// Package service is the crash-ingestion engine behind resd: a fleet
// ships coredumps in, the service dedups them against the
// content-addressed store, shards fresh work onto per-program analysis
// pools built around reusable res.Analyzer sessions, and groups finished
// analyses into crash buckets by root-cause signature.
//
// The paper's premise is debugging failures harvested from production,
// which means the same defect arrives over and over as near-identical
// dumps. The service exploits that twice: byte-identical dumps are cache
// hits served straight from the store without touching the solver, and
// distinct dumps of the same underlying bug land in one bucket via the
// root-cause key, so a human (or an autonomous triage loop) sees one
// work item instead of a thousand reports.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"res"
	"res/internal/checkpoint"
	"res/internal/evidence"
	"res/internal/fault"
	"res/internal/fixverify"
	"res/internal/obs"
	"res/internal/store"
)

// Sentinel errors Submit and friends return; the HTTP layer maps them to
// status codes (429, 503, 404, 400).
var (
	// ErrQueueFull is backpressure: the target shard's queue is at
	// capacity and the dump was rejected, not silently dropped.
	ErrQueueFull = errors.New("service: analysis queue full")
	// ErrDraining rejects work submitted after Shutdown began.
	ErrDraining = errors.New("service: draining")
	// ErrUnknownProgram rejects a dump for a program never registered.
	ErrUnknownProgram = errors.New("service: unknown program")
	// ErrUnknownJob is returned for result lookups with no such ID.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrBadDump rejects bytes that do not parse as a coredump.
	ErrBadDump = errors.New("service: bad dump")
	// ErrBadEvidence marks evidence attachments that do not parse as the
	// canonical evidence wire form. Submission no longer fails on it —
	// a corrupt attachment degrades to plain-dump analysis with a warning
	// on the job — but the sentinel remains for callers that classify
	// attachment damage.
	ErrBadEvidence = errors.New("service: bad evidence")
	// ErrBadCheckpoint marks checkpoint attachments that do not parse as
	// the canonical checkpoint-ring wire form. Like ErrBadEvidence, now a
	// degradation (the analysis runs unanchored), not a rejection.
	ErrBadCheckpoint = errors.New("service: bad checkpoints")
)

// AnalysisConfig is the service-wide analysis configuration. It is part
// of every result's cache identity: changing any knob changes the options
// fingerprint, so results computed under different budgets never collide
// in the store.
type AnalysisConfig struct {
	MaxDepth           int  `json:"max_depth"`
	MaxNodes           int  `json:"max_nodes"`
	BeamWidth          int  `json:"beam_width"`
	UseLBR             bool `json:"use_lbr"`
	LBRSkipConditional bool `json:"lbr_skip_conditional"`
	MatchOutputs       bool `json:"match_outputs"`
	// SearchParallelism is the candidate-level parallelism within each
	// analysis (res.WithSearchParallelism): <= 0 = automatic (the
	// machine's cores divided among the shard's workers), 1 = sequential.
	// It is deliberately NOT part of Canonical(): the engine produces
	// bit-identical results at any parallelism, so results computed under
	// different settings are interchangeable and share cache entries.
	SearchParallelism int `json:"search_parallelism"`
}

// Canonical renders every result-affecting knob in a fixed order; this
// string is what the options fingerprint hashes.
func (c AnalysisConfig) Canonical() string {
	return fmt.Sprintf("v1 depth=%d nodes=%d beam=%d lbr=%t lbrskip=%t outputs=%t",
		c.MaxDepth, c.MaxNodes, c.BeamWidth, c.UseLBR, c.LBRSkipConditional, c.MatchOutputs)
}

// Fingerprint is the options component of the store key.
func (c AnalysisConfig) Fingerprint() store.Fingerprint {
	return store.OptionsFingerprint(c.Canonical())
}

// options lowers the config to the session API's functional options.
func (c AnalysisConfig) options() []res.Option {
	opts := []res.Option{
		res.WithMaxDepth(c.MaxDepth),
		res.WithMaxNodes(c.MaxNodes),
		res.WithBeamWidth(c.BeamWidth),
		res.WithSearchParallelism(c.SearchParallelism),
	}
	if c.UseLBR {
		mode := res.LBRRecordAll
		if c.LBRSkipConditional {
			mode = res.LBRSkipConditional
		}
		opts = append(opts, res.WithLBR(mode))
	}
	if c.MatchOutputs {
		opts = append(opts, res.WithMatchOutputs())
	}
	return opts
}

// Config tunes the service.
type Config struct {
	// Analysis is the shared analysis configuration (cache identity).
	Analysis AnalysisConfig
	// QueueDepth bounds each shard's pending queue; a full queue rejects
	// with ErrQueueFull. < 1 means DefaultQueueDepth.
	QueueDepth int
	// ShardWorkers is the number of concurrent analyses per program
	// shard. < 1 means 1.
	ShardWorkers int
	// JobTimeout deadline-bounds each analysis; 0 means none. A timed-out
	// analysis still reports its partial result (marked partial, never
	// cached).
	JobTimeout time.Duration
	// Store caches results and dump blobs; nil means a default in-memory
	// store.
	Store *store.Store
	// MaxJobs caps the in-memory job records a long-lived daemon retains:
	// when the jobs map exceeds it, the oldest-finished terminal records
	// are evicted (in-flight and queued jobs are never evicted). A
	// resubmission of an evicted tuple is served from the result store as
	// a cache hit, so eviction loses history, not answers. 0 = unbounded.
	MaxJobs int
	// JobRetention additionally evicts terminal job records older than
	// this, regardless of MaxJobs. 0 = no TTL.
	JobRetention time.Duration
	// MaxRetries re-queues a failed analysis up to this many times with
	// exponential backoff (RetryBackoff, 2*RetryBackoff, 4*...), so a
	// transient failure — resource exhaustion, a crashed helper — does not
	// permanently mark the tuple failed. 0 = failures are final.
	MaxRetries int
	// RetryBackoff is the first retry's delay; each subsequent retry
	// doubles it. <= 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Journal, when set, makes job history and bucket membership durable:
	// every terminal job (and every source-registered program) is appended
	// to it, and New replays it so a restarted daemon still answers result
	// polls for past jobs and lists their buckets. Open one with
	// OpenJournal; the caller closes it after Shutdown.
	Journal *Journal
	// JournalCompactEvery bounds the journal's live tail: past this many
	// entries it is compacted into a single snapshot (and mirrored into
	// the store's disk tier when one exists). 0 = DefaultJournalCompactEvery.
	JournalCompactEvery int
	// SlowThreshold, when > 0, logs a span-tree summary to the standard
	// logger for every analysis whose wall time meets it — the
	// slow-analysis log. Tracing is always on inside the service, so no
	// other configuration is needed.
	SlowThreshold time.Duration
	// MaxRequestBody bounds HTTP POST bodies accepted by the service's
	// handlers; <= 0 means DefaultMaxRequestBody. Raise it in lockstep
	// with the cluster router's spool bound when fleets ship huge dumps.
	MaxRequestBody int64
	// Faults, when set, threads the deterministic fault injector through
	// the service's seams: injected solver stalls ahead of each analysis
	// (SeamSolver) and corruption of attachment wire bytes at submit
	// (SeamDecode). Chaos-testing only; nil is free.
	Faults *fault.Injector
	// Node names this process in distributed traces and structured logs
	// (the cluster passes the advertise URL); "" means "local".
	Node string
	// FlightRec, when set, receives span summaries and operational
	// events for the always-on per-node flight recorder
	// (GET /internal/v1/flightrec). Nil is inert.
	FlightRec *obs.FlightRecorder

	// BeforeAnalyze, when set, runs in the worker just before each
	// analysis. Test-only: it lets lifecycle tests hold a worker busy
	// deterministically.
	BeforeAnalyze func()
	// analyzeHook, when set, runs in the worker in place of the analysis
	// preflight; a non-nil return fails the attempt. Test-only: it lets
	// retry tests inject transient failures deterministically.
	analyzeHook func(attempt int) error
}

// DefaultRetryBackoff is the first retry delay when Config.RetryBackoff
// is unset.
const DefaultRetryBackoff = 100 * time.Millisecond

// SubmitOverrides are per-request analysis-option overrides: a submitter
// can ask for a deeper or narrower search than the daemon's default for
// one dump without redeploying the fleet's configuration. Overridden
// knobs are folded into the options fingerprint, so a result computed
// under overrides is cached under its own key and can never be served to
// a submitter who asked for different options. Zero fields inherit the
// daemon's configuration.
type SubmitOverrides struct {
	MaxDepth  int `json:"max_depth,omitempty"`
	BeamWidth int `json:"beam_width,omitempty"`
}

// empty reports whether the overrides change nothing.
func (o *SubmitOverrides) empty() bool {
	return o == nil || (o.MaxDepth == 0 && o.BeamWidth == 0)
}

// DefaultQueueDepth is the per-shard queue bound when Config leaves it 0.
const DefaultQueueDepth = 64

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Job is the public record of one submitted dump. Its ID is the store
// key of the (program, dump, options) tuple, so resubmitting the same
// dump yields the same ID — duplicates coalesce instead of queueing
// twice.
type Job struct {
	ID          string `json:"id"`
	Program     string `json:"program"` // program fingerprint (hex)
	ProgramName string `json:"program_name,omitempty"`
	// TraceID identifies the distributed request trace this submission
	// joined (minted at the ingest edge, or inherited from the caller's
	// traceparent header). Grep any node's logs for it to reconstruct
	// the request; GET /v1/jobs/{id}/trace stitches its spans.
	TraceID string `json:"trace_id,omitempty"`
	Status  Status `json:"status"`
	// Cached marks a response served from the store without analysis.
	Cached bool `json:"cached"`
	// Partial marks a result cut short by drain or JobTimeout.
	Partial bool   `json:"partial,omitempty"`
	Bucket  string `json:"bucket,omitempty"`
	Error   string `json:"error,omitempty"`
	// Report is the deterministic analysis report (res.Result.JSON).
	Report json.RawMessage `json:"report,omitempty"`
	// Retries counts how many times a failed analysis of this tuple was
	// re-queued by the retry policy.
	Retries int `json:"retries,omitempty"`
	// Mode distinguishes the service's job flavors: "" is a plain
	// analysis, ModeFixVerify a fix-verification job (the report is a
	// fix verdict), ModeMinimize a delta-debugging job (the report is a
	// minimal repro).
	Mode string `json:"mode,omitempty"`
	// Evidence lists the kinds of the evidence sources attached to the
	// submission, in application order.
	Evidence []string `json:"evidence,omitempty"`
	// Checkpointed marks a submission that carried a checkpoint-ring
	// attachment; the anchoring outcome is the report's checkpoint_anchor.
	Checkpointed bool `json:"checkpointed,omitempty"`
	// Warnings lists non-fatal degradations applied to this job — a
	// corrupt evidence or checkpoint attachment that was dropped so the
	// dump could still be analyzed plain. The report is then the plain
	// tuple's report and is cached under the plain tuple's key.
	Warnings    []string  `json:"warnings,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

type jobState struct {
	job         Job
	key         store.Key // result key (the ID is its hash)
	dump        *res.Dump
	overrides   *SubmitOverrides // per-request analysis options, nil = daemon defaults
	evidence    evidence.Set     // per-request evidence attachment, nil = none
	checkpoints *checkpoint.Ring // per-request checkpoint attachment, nil = none
	retries     int
	done        chan struct{}
	// mode mirrors Job.Mode; it selects the worker's execution path.
	mode string
	// patch is the decoded candidate fix for ModeFixVerify jobs.
	patch *fixverify.Patch
	// src is the program's assembly source for ModeFixVerify jobs
	// (patches are applied to source; labels key the operations).
	src string
	// evidenceBytes/checkpointBytes retain the attachments' canonical
	// wire bytes past finish() — unlike the decoded forms they are small,
	// and MinimizeJob needs them to rebuild a finished job's exact tuple.
	evidenceBytes   []byte
	checkpointBytes []byte
	// trace is the finished analysis's span tree, served by
	// GET /v1/jobs/{id}/trace. Nil for cache hits (no analysis ran in
	// this process) and replayed/evicted records. Guarded by the service
	// mutex; immutable once set.
	trace *obs.TraceData
	// reqTrace is the live request-scoped fragment for fresh work: a
	// "request" root opened at submit under the caller's trace context,
	// with the analysis span tree later linked under its "analyze"
	// child. Guarded by the service mutex (the pointer; the Trace itself
	// is internally synchronized).
	reqTrace *obs.Trace
	// subs fan the job's analysis progress out to event-stream watchers;
	// guarded by the service mutex.
	subs []*progressSub
}

// shard is one program's analysis pool: a shared Analyzer session (the
// predecessor index computed once), a bounded queue, and counters.
type shard struct {
	fp       store.Fingerprint
	name     string
	prog     *res.Program // the registered image; minimize jobs re-analyze it
	analyzer *res.Analyzer
	queue    chan *jobState

	// Guarded by Service.mu.
	submitted, completed, failed, cached, rejected uint64
}

// Service is the ingestion engine. Construct with New, register programs,
// submit dumps, then Shutdown to drain.
type Service struct {
	cfg   Config
	store *store.Store
	optFP store.Fingerprint
	start time.Time // process start, backs resd_uptime_seconds

	baseCtx context.Context // canceled when a drain deadline forces cut-off
	cancel  context.CancelFunc

	mu       sync.Mutex
	shards   map[string]*shard // keyed by program fingerprint hex
	jobs     map[string]*jobState
	buckets  map[string][]string // bucket key -> job IDs
	draining bool
	wg       sync.WaitGroup

	// sources retains each source-registered program's text (keyed by
	// program fingerprint hex) so journal compaction can snapshot the
	// registration; replaying restores the shard.
	sources map[string]JournalProgram
	// replaying suppresses journal appends while New replays the journal
	// (replayed state must not be re-journaled). Only New's goroutine
	// runs while it is set.
	replaying bool

	// doneOrder tracks terminal job records oldest-finished first, the
	// eviction order for the MaxJobs/JobRetention bounds. Maintained only
	// when one of the bounds is configured.
	doneOrder []doneRec
	// evicted maps evicted complete jobs to the slim record needed to
	// keep GET /v1/results/{id} answering from the result store after the
	// full job record is gone. Bounded FIFO (evictedOrder), ~200 bytes
	// per entry against the kilobytes a full record holds. Each tombstone
	// carries a sequence number matched by its order entry, so an entry
	// staled by resurrect-and-reinsert (or a journal replay supersede)
	// can never trim a live tombstone.
	evicted      map[string]evictedRec
	evictedOrder []evictedRef
	evictedSeq   uint64
	// pendingRetries tracks jobs waiting out a retry backoff, so Shutdown
	// can terminalize them instead of abandoning their timers.
	pendingRetries map[*jobState]*retryRec

	submitted, completed, failed, canceled uint64
	rejected, coalesced                    uint64
	cacheHits, cacheMisses                 uint64
	jobsEvicted, retried                   uint64
	journalReplayed                        int
	// evidenceAttached counts accepted submissions that carried an
	// evidence attachment; evidenceKinds breaks them down per source kind.
	evidenceAttached uint64
	evidenceKinds    map[string]uint64
	// checkpointAttached counts accepted submissions that carried a
	// checkpoint-ring attachment; checkpointAnchored counts completed
	// analyses that anchored their search on one of its checkpoints.
	checkpointAttached uint64
	checkpointAnchored uint64
	// attachmentsDegraded counts corrupt evidence/checkpoint attachments
	// dropped at submit so the dump could still be analyzed plain.
	attachmentsDegraded uint64
	// fixverifyTotal counts completed fix verifications; fixverifyVerdicts
	// breaks them down per verdict.
	fixverifyTotal    uint64
	fixverifyVerdicts map[string]uint64
	// minimizeTotal counts completed minimizations; minimizeRuns the
	// analyzer re-runs they spent; minimizeReductions the reductions kept.
	minimizeTotal      uint64
	minimizeRuns       uint64
	minimizeReductions uint64

	// eventsDropped counts progress events lost to slow NDJSON watchers
	// across all streams (resd_events_dropped_total). Atomic: drops are
	// detected outside the service mutex, on the analyzing goroutine.
	eventsDropped atomic.Uint64

	// Latency histograms. All are created by New and never reassigned,
	// so Observe/Snapshot need no locking beyond the histogram's own
	// atomics. histSolver is keyed by obs.DepthBand band; histStoreOp by
	// store operation ("get", "put").
	histAnalysis  *obs.Histogram // end-to-end analysis wall time
	histQueueWait *obs.Histogram // submit-to-start shard-queue wait
	histBisect    *obs.Histogram // per-probe checkpoint-bisect replay
	histSolver    map[string]*obs.Histogram
	histStoreOp   map[string]*obs.Histogram
}

// doneRec is one entry of the eviction queue. The timestamp doubles as a
// validity check: a record requeued after finishing gets a new entry, and
// the stale one is skipped when popped.
type doneRec struct {
	id string
	at time.Time
}

// evictedRec is what survives a complete job's eviction: enough to serve
// a result poll from the store and keep the job's identity.
type evictedRec struct {
	key         store.Key
	program     string
	programName string
	bucket      string
	mode        string
	finished    time.Time
	seq         uint64
}

// evictedRef is one entry of the tombstone trim queue.
type evictedRef struct {
	id  string
	seq uint64
}

// retryRec pairs a backed-off job with its timer and shard.
type retryRec struct {
	sh    *shard
	timer *time.Timer
}

// insertEvictedLocked installs (or replaces) a tombstone and queues its
// trim entry. Caller holds s.mu.
func (s *Service) insertEvictedLocked(id string, rec evictedRec) {
	if s.evicted == nil {
		s.evicted = make(map[string]evictedRec)
	}
	s.evictedSeq++
	rec.seq = s.evictedSeq
	s.evicted[id] = rec
	s.evictedOrder = append(s.evictedOrder, evictedRef{id: id, seq: rec.seq})
	for len(s.evictedOrder) > s.maxEvictedIndex() {
		ref := s.evictedOrder[0]
		s.evictedOrder = s.evictedOrder[1:]
		// Only the entry matching the live tombstone's sequence may trim
		// it; entries staled by resurrection or replay supersede are
		// skipped.
		if live, ok := s.evicted[ref.id]; ok && live.seq == ref.seq {
			delete(s.evicted, ref.id)
		}
	}
}

// bounded reports whether any job-record bound is configured.
func (s *Service) bounded() bool {
	return s.cfg.MaxJobs > 0 || s.cfg.JobRetention > 0
}

// recordDoneLocked queues a terminal job for eviction. Caller holds s.mu.
func (s *Service) recordDoneLocked(js *jobState) {
	if !s.bounded() {
		return // no bounds: don't accumulate an eviction queue for nothing
	}
	s.doneOrder = append(s.doneOrder, doneRec{id: js.job.ID, at: js.job.FinishedAt})
	s.evictJobsLocked()
}

// maxEvictedIndex bounds the slim tombstone index.
func (s *Service) maxEvictedIndex() int {
	if s.cfg.MaxJobs > 0 {
		return 16 * s.cfg.MaxJobs
	}
	return 1 << 18
}

// evictJobsLocked enforces the job-record bounds. A complete job leaves a
// slim tombstone behind so result polls keep resolving via the store;
// failed/canceled/partial records (whose answer was never durable) just
// vanish. Caller holds s.mu.
func (s *Service) evictJobsLocked() {
	now := time.Now()
	for len(s.doneOrder) > 0 {
		ent := s.doneOrder[0]
		expired := s.cfg.JobRetention > 0 && now.Sub(ent.at) > s.cfg.JobRetention
		over := s.cfg.MaxJobs > 0 && len(s.jobs) > s.cfg.MaxJobs
		if !expired && !over {
			return
		}
		s.doneOrder = s.doneOrder[1:]
		js, ok := s.jobs[ent.id]
		if !ok || !js.job.Status.Terminal() || !js.job.FinishedAt.Equal(ent.at) {
			continue // evicted already, or requeued: a newer entry governs it
		}
		delete(s.jobs, ent.id)
		s.jobsEvicted++
		if js.job.Status == StatusDone && !js.job.Partial {
			s.insertEvictedLocked(ent.id, evictedRec{
				key: js.key, program: js.job.Program, programName: js.job.ProgramName,
				bucket: js.job.Bucket, mode: js.job.Mode, finished: js.job.FinishedAt,
			})
		}
	}
}

// resurrectEvictedLocked clears the eviction tombstone and the bucket
// membership the evicted record left behind, so a resubmission that
// recreates the job (from the store, or by re-analysis after an LRU
// miss) does not append the same ID to its bucket twice. Caller holds
// s.mu.
func (s *Service) resurrectEvictedLocked(id string) {
	rec, ok := s.evicted[id]
	if !ok {
		return
	}
	delete(s.evicted, id) // the stale order entry is skipped at trim time
	s.removeBucketLocked(rec.bucket, id)
}

// evictedJob serves a result lookup for an evicted complete job from the
// store. Returns false when the ID is unknown or the store no longer
// holds the report.
func (s *Service) evictedJob(id string) (Job, bool) {
	s.mu.Lock()
	rec, ok := s.evicted[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	rep, ok := s.store.Get(rec.key)
	if !ok {
		return Job{}, false
	}
	return Job{
		ID: id, Program: rec.program, ProgramName: rec.programName,
		Status: StatusDone, Cached: true, Report: rep,
		Bucket: rec.bucket, Mode: rec.mode, FinishedAt: rec.finished,
	}, true
}

// New creates a service; it accepts work immediately (programs register
// lazily via RegisterProgram/RegisterSource). When Config.Journal is set,
// the journal is replayed first: journaled programs are re-registered and
// terminal jobs are restored — completed ones as store-backed records
// whose reports resolve from the content-addressed store, the rest as
// bare history — so job IDs, result polls, and crash-bucket membership
// survive a restart.
func New(cfg Config) *Service {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ShardWorkers < 1 {
		cfg.ShardWorkers = 1
	}
	if cfg.Store == nil {
		cfg.Store = store.New(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		store:   cfg.Store,
		optFP:   cfg.Analysis.Fingerprint(),
		start:   time.Now(),
		baseCtx: ctx,
		cancel:  cancel,
		shards:  make(map[string]*shard),
		jobs:    make(map[string]*jobState),
		buckets: make(map[string][]string),
		sources: make(map[string]JournalProgram),

		histAnalysis:  obs.NewHistogram(obs.LatencyBuckets),
		histQueueWait: obs.NewHistogram(obs.LatencyBuckets),
		histBisect:    obs.NewHistogram(obs.MicroBuckets),
		histSolver:    make(map[string]*obs.Histogram, len(obs.DepthBands)),
		histStoreOp: map[string]*obs.Histogram{
			"get": obs.NewHistogram(obs.MicroBuckets),
			"put": obs.NewHistogram(obs.MicroBuckets),
		},
	}
	for _, band := range obs.DepthBands {
		s.histSolver[band] = obs.NewHistogram(obs.MicroBuckets)
	}
	s.store.SetObserver(func(op string, d time.Duration) {
		if h := s.histStoreOp[op]; h != nil {
			h.Observe(d.Seconds())
		}
	})
	if cfg.Journal != nil {
		s.replayJournal()
	}
	return s
}

// effectiveAnalysis resolves per-request overrides against the daemon's
// configuration and returns the matching options fingerprint — the
// overridden knobs are part of the cache identity, so results computed
// under different options never collide.
func (s *Service) effectiveAnalysis(o *SubmitOverrides) (AnalysisConfig, store.Fingerprint) {
	if o.empty() {
		return s.cfg.Analysis, s.optFP
	}
	eff := s.cfg.Analysis
	if o.MaxDepth > 0 {
		eff.MaxDepth = o.MaxDepth
	}
	if o.BeamWidth > 0 {
		eff.BeamWidth = o.BeamWidth
	}
	return eff, eff.Fingerprint()
}

// optionsDesc folds the attachments' content fingerprints into the
// canonical analysis-options description: evidence and checkpoints change
// what the search may conclude, so they are part of the result's cache
// identity. Mode-specific suffixes (fix verification's patch fingerprint,
// minimization's mode marker) are appended by the caller before hashing.
func optionsDesc(eff AnalysisConfig, ev evidence.Set, ck *checkpoint.Ring) string {
	desc := eff.Canonical()
	if fp := ev.Fingerprint(); fp != "" {
		desc += " evidence=" + fp
	}
	if fp := ck.Fingerprint(); fp != "" {
		desc += " checkpoints=" + fp
	}
	return desc
}

// optionsFingerprint hashes optionsDesc into the options component of the
// store key.
func optionsFingerprint(eff AnalysisConfig, ev evidence.Set, ck *checkpoint.Ring) store.Fingerprint {
	return store.OptionsFingerprint(optionsDesc(eff, ev, ck))
}

// noteEvidenceLocked counts an accepted submission's attachments.
// Caller holds s.mu.
func (s *Service) noteEvidenceLocked(ev evidence.Set, ck *checkpoint.Ring) {
	if ck != nil && !ck.Empty() {
		s.checkpointAttached++
	}
	if len(ev) == 0 {
		return
	}
	s.evidenceAttached++
	if s.evidenceKinds == nil {
		s.evidenceKinds = make(map[string]uint64)
	}
	for _, src := range ev {
		s.evidenceKinds[src.Kind()]++
	}
}

// Store exposes the backing store (for metrics and tests).
func (s *Service) Store() *store.Store { return s.store }

// RegisterProgram opens an analysis shard for p and returns its program
// ID (the program fingerprint in hex). Registration is idempotent: the
// same program image maps to the same shard no matter how often — or
// under which name — it is registered.
func (s *Service) RegisterProgram(name string, p *res.Program) (string, error) {
	fp, err := store.ProgramFingerprint(p)
	if err != nil {
		return "", err
	}
	id := fp.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", ErrDraining
	}
	if _, ok := s.shards[id]; ok {
		return id, nil
	}
	aopts := s.cfg.Analysis.options()
	if s.cfg.Analysis.SearchParallelism <= 0 {
		// Unset: split the machine between the shard's workers and each
		// analysis's candidate-level pool instead of multiplying them.
		inner := runtime.GOMAXPROCS(0) / s.cfg.ShardWorkers
		if inner < 1 {
			inner = 1
		}
		aopts = append(aopts, res.WithSearchParallelism(inner))
	}
	sh := &shard{
		fp:       fp,
		name:     name,
		prog:     p,
		analyzer: res.NewAnalyzer(p, aopts...),
		queue:    make(chan *jobState, s.cfg.QueueDepth),
	}
	s.shards[id] = sh
	for i := 0; i < s.cfg.ShardWorkers; i++ {
		s.wg.Add(1)
		go s.worker(sh)
	}
	return id, nil
}

// RegisterSource assembles src and registers the resulting program. The
// source text is retained (and journaled, when a journal is configured)
// so the registration survives a restart.
func (s *Service) RegisterSource(name, src string) (string, error) {
	p, err := res.Assemble(src)
	if err != nil {
		return "", fmt.Errorf("service: assembling %q: %w", name, err)
	}
	id, err := s.RegisterProgram(name, p)
	if err != nil {
		return id, err
	}
	rec := JournalProgram{Name: name, Source: src}
	s.mu.Lock()
	_, known := s.sources[id]
	if !known {
		s.sources[id] = rec
	}
	s.mu.Unlock()
	if !known {
		s.journalAppend(journalEntry{T: "program", Program: &rec})
	}
	return id, nil
}

// Submit ingests one serialized coredump for the given program. The
// returned Job is a snapshot: for a cache hit it is already done (Cached
// set, Report populated from the store); for fresh work it is queued and
// the caller polls Job/Wait by ID. A duplicate of an in-flight dump
// coalesces onto the existing job. A full shard queue returns
// ErrQueueFull — the caller's cue to back off.
func (s *Service) Submit(programID string, dumpBytes []byte) (Job, error) {
	return s.SubmitEvidence(programID, dumpBytes, nil, nil)
}

// SubmitWithOptions is Submit with per-request analysis-option overrides.
// The overrides participate in the cache identity: the same dump under
// different options is a different job with its own store entry.
func (s *Service) SubmitWithOptions(programID string, dumpBytes []byte, o *SubmitOverrides) (Job, error) {
	return s.SubmitEvidence(programID, dumpBytes, nil, o)
}

// SubmitEvidence is Submit with an evidence attachment (canonical
// evidence wire bytes, internal/evidence.Set.Encode; nil/empty = none)
// and per-request option overrides. The evidence's content fingerprint
// is folded into the options fingerprint, so the same dump with
// different evidence is a different tuple with its own cache entry,
// while byte-equivalent evidence coalesces like everything else.
func (s *Service) SubmitEvidence(programID string, dumpBytes, evidenceBytes []byte, o *SubmitOverrides) (Job, error) {
	return s.SubmitEvidenceCheckpoints(programID, dumpBytes, evidenceBytes, nil, o)
}

// SubmitEvidenceCheckpoints is SubmitEvidence with an additional
// checkpoint-ring attachment (canonical checkpoint wire bytes,
// internal/checkpoint.Ring.Encode; nil/empty = none). A ring bounds the
// analysis: the search anchors on the latest checkpoint that reproduces
// the failure, so the suffix depth is limited by the checkpoint interval
// instead of the execution length. Like evidence, the ring's content
// fingerprint is part of the result's cache identity.
func (s *Service) SubmitEvidenceCheckpoints(programID string, dumpBytes, evidenceBytes, checkpointBytes []byte, o *SubmitOverrides) (Job, error) {
	return s.SubmitTraced(programID, dumpBytes, evidenceBytes, checkpointBytes, o, obs.TraceContext{})
}

// node names this process in trace fragments and flight events.
func (s *Service) node() string {
	if s.cfg.Node != "" {
		return s.cfg.Node
	}
	return "local"
}

// SubmitTraced is SubmitEvidenceCheckpoints under an explicit
// distributed trace context: tc carries the request's trace ID (minted
// here when empty, so the service is also a valid ingest edge) and the
// remote span the request fragment should hang under — the router's
// proxy span when the submission was forwarded. Every path stamps the
// job's TraceID; fresh work additionally opens the request-scoped span
// fragment that the trace stitcher later merges with the engine's span
// tree and the router's routing fragment.
func (s *Service) SubmitTraced(programID string, dumpBytes, evidenceBytes, checkpointBytes []byte, o *SubmitOverrides, tc obs.TraceContext) (Job, error) {
	return s.submitTuple(programID, dumpBytes, evidenceBytes, checkpointBytes, o, tc, submitExtras{})
}

// retainAttachments stores the attachments' canonical wire bytes on the
// job record. They survive finish() — which drops the decoded forms —
// so MinimizeJob can rebuild a finished job's exact tuple later.
func retainAttachments(js *jobState, ev evidence.Set, ck *checkpoint.Ring) {
	if len(ev) > 0 {
		js.evidenceBytes = ev.Encode()
	}
	if ck != nil && !ck.Empty() {
		js.checkpointBytes = ck.Encode()
	}
}

// submitExtras carries the mode-specific parts of a submission through
// the shared ingest flow: empty for a plain analysis, the decoded patch
// and program source for a fix verification, the mode marker alone for a
// minimization. Everything in it is folded into the job's cache identity
// by submitTuple.
type submitExtras struct {
	mode  string
	patch *fixverify.Patch
	src   string
}

// submitTuple is the shared ingest flow behind SubmitTraced,
// SubmitFixTraced, and MinimizeJob: canonicalize and dedup the tuple,
// coalesce onto in-flight work, serve complete answers from the store,
// or queue fresh work on the program's shard.
func (s *Service) submitTuple(programID string, dumpBytes, evidenceBytes, checkpointBytes []byte, o *SubmitOverrides, tc obs.TraceContext, ex submitExtras) (Job, error) {
	progFP, err := store.ParseFingerprint(programID)
	if err != nil {
		return Job{}, ErrUnknownProgram
	}
	s.mu.Lock()
	draining := s.draining
	_, known := s.shards[programID]
	s.mu.Unlock()
	if draining {
		// Draining wins over unknown-program: a drained node may simply
		// have missed the registration broadcast, and 503 tells the client
		// (or the routing proxy) to retry elsewhere instead of giving up
		// on a 404.
		return Job{}, ErrDraining
	}
	if !known {
		return Job{}, ErrUnknownProgram
	}
	dumpFP, canon, d, err := store.CanonicalizeDump(dumpBytes)
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadDump, err)
	}
	// Attachments degrade, the dump does not: a fleet shipping a real
	// crash must not lose the analysis because a sidecar payload (LBR
	// ring, checkpoint ring, error-log breadcrumbs) was torn in transit
	// or on disk. A corrupt attachment is dropped with a warning on the
	// job and the dump analyzed plain — cached under the plain tuple's
	// key, which is exactly the result the degraded submission computes.
	evidenceBytes = s.cfg.Faults.Corrupt(fault.SeamDecode, fault.KindAttachmentCorrupt, evidenceBytes)
	checkpointBytes = s.cfg.Faults.Corrupt(fault.SeamDecode, fault.KindAttachmentCorrupt, checkpointBytes)
	var warnings []string
	evSet, err := evidence.Decode(evidenceBytes)
	if err != nil {
		warnings = append(warnings, fmt.Sprintf("%v: %v; analyzed without evidence", ErrBadEvidence, err))
		evSet = nil
	}
	ring, err := checkpoint.Decode(checkpointBytes)
	if err != nil {
		warnings = append(warnings, fmt.Sprintf("%v: %v; analyzed without checkpoint anchoring", ErrBadCheckpoint, err))
		ring = nil
	}
	if len(warnings) > 0 {
		s.mu.Lock()
		s.attachmentsDegraded += uint64(len(warnings))
		s.mu.Unlock()
		slog.Warn("degraded submission: corrupt attachment dropped",
			"trace_id", tc.TraceID, "program", programID,
			"warnings", strings.Join(warnings, "; "))
	}
	if o.empty() {
		o = nil
	}
	eff, optFP := s.effectiveAnalysis(o)
	if len(evSet) > 0 || !ring.Empty() || ex.mode != "" {
		desc := optionsDesc(eff, evSet, ring)
		if ex.patch != nil {
			// The patch is part of the verdict's cache identity: the same
			// tuple under a different candidate fix is a different job.
			desc += " patch=" + ex.patch.Fingerprint()
		}
		if ex.mode != "" {
			desc += " mode=" + ex.mode
		}
		optFP = store.OptionsFingerprint(desc)
	}
	key := store.ResultKey(progFP, dumpFP, optFP)
	id := key.ID()
	if tc.TraceID == "" {
		// This process is the ingest edge: mint the request's trace ID
		// here so even single-node deployments get grep-able identity.
		tc.TraceID = obs.NewTraceID()
	}

	// Probe the store before taking the service lock (the disk tier does
	// IO). A concurrent duplicate submission is serialized below.
	cachedRep, haveCached := s.store.Get(key)

	s.mu.Lock()
	s.evictJobsLocked() // amortized TTL/cap sweep, uniform across all submit paths
	if s.draining {
		s.mu.Unlock()
		return Job{}, ErrDraining
	}
	sh, ok := s.shards[programID]
	if !ok {
		s.mu.Unlock()
		return Job{}, ErrUnknownProgram
	}
	var stale *jobState
	if js, ok := s.jobs[id]; ok {
		// Same tuple already known. In flight: coalesce onto it. Finished
		// with a complete answer: serve it as a cache hit. Finished
		// without one (failed, or cut to a partial result by a drain or
		// job timeout): fall through and requeue — a partial answer must
		// never become the tuple's answer of record.
		snap := js.job
		// The returned snapshot carries THIS submission's degradation
		// warnings (the stored record keeps its own): the submitter whose
		// attachment was dropped must hear about it even on a cache hit.
		snap.Warnings = append(warnings, snap.Warnings...)
		// Likewise this submission's trace identity: the stored record
		// keeps the trace that caused the analysis (whose fragments the
		// trace endpoint stitches), but the response belongs to the
		// caller's request.
		if snap.TraceID == "" {
			snap.TraceID = tc.TraceID
		}
		switch {
		case !snap.Status.Terminal():
			s.submitted++
			sh.submitted++
			s.coalesced++
			s.noteEvidenceLocked(evSet, ring)
			s.mu.Unlock()
			return snap, nil
		case snap.Status == StatusDone && !snap.Partial:
			s.submitted++
			sh.submitted++
			s.cacheHits++
			sh.cached++
			s.noteEvidenceLocked(evSet, ring)
			snap.Cached = true
			if haveCached {
				snap.Report = cachedRep
			}
			s.mu.Unlock()
			if !haveCached {
				// The LRU evicted this result; the job record still holds
				// the complete bytes, so repopulate the store.
				s.store.Put(key, snap.Report)
			}
			return snap, nil
		}
		// The stale record (and its bucket membership, if the partial
		// result earned one) is replaced below, only once the requeue is
		// accepted by the shard queue.
		stale = js
	}
	now := time.Now()
	if haveCached {
		// First sighting in this process — or a stale partial/failed
		// record being superseded — and the store (possibly its disk
		// tier, written by a prior run or another daemon) already has the
		// complete result.
		s.resurrectEvictedLocked(id)
		if stale != nil {
			s.removeBucketLocked(stale.job.Bucket, id)
		}
		s.cacheHits++
		sh.cached++
		sh.submitted++
		s.submitted++
		s.noteEvidenceLocked(evSet, ring)
		js := &jobState{
			job: Job{
				ID: id, Program: programID, ProgramName: sh.name,
				TraceID: tc.TraceID,
				Status:  StatusDone, Cached: true, Report: cachedRep,
				Bucket:       bucketFromReport(sh.name, cachedRep),
				Evidence:     evSet.Kinds(),
				Checkpointed: !ring.Empty(),
				Warnings:     warnings,
				Mode:         ex.mode,
				SubmittedAt:  now, FinishedAt: now,
			},
			key:  key,
			mode: ex.mode,
			done: make(chan struct{}),
		}
		retainAttachments(js, evSet, ring)
		close(js.done)
		s.jobs[id] = js
		s.addBucketLocked(js.job.Bucket, id)
		s.recordDoneLocked(js)
		rec := journalJobRecord(js)
		s.mu.Unlock()
		s.journalAppend(journalEntry{T: "job", Job: rec})
		return js.job, nil
	}
	// Fresh work: open the request-scoped trace fragment. Its root spans
	// submit-to-terminal; the analysis span tree links under the
	// "analyze" child, and when the submission was routed here the whole
	// fragment hangs under the router's proxy span via tc.ParentRef.
	reqTrace := obs.NewTraceCtx("request", tc, s.node())
	reqTrace.Root().SetStr("job", id)
	reqTrace.Root().SetStr("program", sh.name)
	js := &jobState{
		job: Job{
			ID: id, Program: programID, ProgramName: sh.name,
			TraceID: tc.TraceID,
			Status:  StatusQueued, Evidence: evSet.Kinds(),
			Checkpointed: !ring.Empty(), Warnings: warnings,
			Mode:        ex.mode,
			SubmittedAt: now,
		},
		key:         key,
		dump:        d,
		overrides:   o,
		evidence:    evSet,
		checkpoints: ring,
		mode:        ex.mode,
		patch:       ex.patch,
		src:         ex.src,
		reqTrace:    reqTrace,
		done:        make(chan struct{}),
	}
	retainAttachments(js, evSet, ring)
	select {
	case sh.queue <- js:
	default:
		sh.rejected++
		s.rejected++
		s.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	s.resurrectEvictedLocked(id)
	if stale != nil {
		s.removeBucketLocked(stale.job.Bucket, id)
	}
	s.cacheMisses++
	sh.submitted++
	s.submitted++
	s.noteEvidenceLocked(evSet, ring)
	s.jobs[id] = js
	snap := js.job
	s.mu.Unlock()
	if ex.mode != "" {
		slog.Info("job accepted", "trace_id", tc.TraceID, "job_id", id, "program", sh.name, "mode", ex.mode)
	} else {
		slog.Info("job accepted", "trace_id", tc.TraceID, "job_id", id, "program", sh.name)
	}

	// Persist the dump blob as the service's ingest archive — only when
	// the store has a disk tier. In a memory-only store the blob would
	// just crowd result entries out of the LRU (nothing in-process ever
	// reads a dump blob back).
	if s.store.Persistent() {
		s.store.Put(store.DumpKey(dumpFP), canon)
	}
	return snap, nil
}

// BatchItem is one dump's outcome within a batch submission. Exactly one
// of Job/Error is meaningful; Duplicate marks a dump that was
// byte-identical to an earlier dump in the same batch and was coalesced
// onto its job without a second ingest.
type BatchItem struct {
	Job       Job    `json:"job"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Error     string `json:"error,omitempty"`
}

// SubmitBatch ingests many dumps for one program in a single call,
// amortizing per-request overhead for fleets shipping dump bursts.
// Results are positional: out[i] is dumps[i]'s outcome, and evidence and
// checkpoints — when non-nil — are positional with dumps (entries may be
// empty). Byte-identical (dump, evidence, checkpoints) triples within
// the batch are coalesced before ingest (marked Duplicate); triples that
// canonicalize to the same bytes additionally coalesce via the regular
// in-flight/cache machinery. Per-item failures (bad dump, full queue)
// are reported in place — one poisoned dump does not fail the rest of
// the batch.
func (s *Service) SubmitBatch(programID string, dumps [][]byte, ev, cks [][]byte, o *SubmitOverrides) []BatchItem {
	return s.SubmitBatchTraced(programID, dumps, ev, cks, o, obs.TraceContext{})
}

// SubmitBatchTraced is SubmitBatch under one shared trace context:
// every fresh job in the batch records its fragment under the same
// request trace, so a routed batch reconstructs as one tree.
func (s *Service) SubmitBatchTraced(programID string, dumps [][]byte, ev, cks [][]byte, o *SubmitOverrides, tc obs.TraceContext) []BatchItem {
	items := make([]BatchItem, len(dumps))
	if tc.TraceID == "" {
		tc.TraceID = obs.NewTraceID()
	}
	seen := make(map[[sha256.Size]byte]int, len(dumps))
	for i, db := range dumps {
		var evb, ckb []byte
		if i < len(ev) {
			evb = ev[i]
		}
		if i < len(cks) {
			ckb = cks[i]
		}
		// Length-prefix the dump and evidence so the (dump, evidence,
		// checkpoints) triple encoding is injective — a bare separator
		// byte could be aliased by the payloads themselves.
		h := sha256.New()
		var plen [8]byte
		binary.BigEndian.PutUint64(plen[:], uint64(len(db)))
		h.Write(plen[:])
		h.Write(db)
		binary.BigEndian.PutUint64(plen[:], uint64(len(evb)))
		h.Write(plen[:])
		h.Write(evb)
		h.Write(ckb)
		var hk [sha256.Size]byte
		h.Sum(hk[:0])
		if j, ok := seen[hk]; ok {
			items[i] = items[j]
			items[i].Duplicate = true
			continue
		}
		seen[hk] = i
		job, err := s.SubmitTraced(programID, db, evb, ckb, o, tc)
		items[i].Job = job
		if err != nil {
			items[i].Error = err.Error()
		}
	}
	return items
}

// worker drains one shard's queue until Shutdown closes it.
func (s *Service) worker(sh *shard) {
	defer s.wg.Done()
	for js := range sh.queue {
		s.run(sh, js)
	}
}

// maybeRetry re-queues a failed analysis under the retry policy: up to
// Config.MaxRetries attempts with exponential backoff. Returns false —
// the failure is final — when retries are off, exhausted, or the service
// is draining.
func (s *Service) maybeRetry(sh *shard, js *jobState, cause error) bool {
	if s.cfg.MaxRetries <= 0 || s.baseCtx.Err() != nil {
		return false
	}
	s.mu.Lock()
	if s.draining || js.retries >= s.cfg.MaxRetries {
		s.mu.Unlock()
		return false
	}
	js.retries++
	js.job.Retries = js.retries
	js.job.Status = StatusQueued
	if cause != nil {
		// Visible to pollers while the retry waits out its backoff; a
		// successful retry clears it.
		js.job.Error = cause.Error()
	}
	s.retried++
	backoff := s.cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	delay := jitterDelay(backoff << (js.retries - 1))
	// Register the timer before arming it so Shutdown can find the job:
	// a backed-off job is neither on a queue nor in a worker, and an
	// abandoned timer would leave its waiters hanging past the drain.
	if s.pendingRetries == nil {
		s.pendingRetries = make(map[*jobState]*retryRec)
	}
	rec := &retryRec{sh: sh}
	s.pendingRetries[js] = rec
	rec.timer = time.AfterFunc(delay, func() { s.requeueRetry(sh, js) })
	s.mu.Unlock()
	return true
}

// jitterDelay spreads a retry delay uniformly over [d/2, d). Exponential
// backoff alone synchronizes retries: every job failed by the same
// transient outage retries on the same schedule and the herd re-arrives
// together. Jitter decorrelates them while keeping the mean at 3d/4.
func jitterDelay(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(d-half)))
}

// requeueRetry puts a backed-off job back on its shard's queue. By the
// time the timer fires the service may be draining (the queue is closed:
// sending would panic) or the queue may be full; either way the job
// finishes terminally instead of retrying into the void.
func (s *Service) requeueRetry(sh *shard, js *jobState) {
	s.mu.Lock()
	if _, ok := s.pendingRetries[js]; !ok {
		// Shutdown already terminalized this job between the timer firing
		// and this callback taking the lock.
		s.mu.Unlock()
		return
	}
	delete(s.pendingRetries, js)
	if s.draining {
		s.mu.Unlock()
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusCanceled
			j.Error = "canceled during drain"
		})
		return
	}
	select {
	case sh.queue <- js:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			j.Error = "retry abandoned: analysis queue full"
		})
	}
}

// run executes one queued analysis and records its outcome.
func (s *Service) run(sh *shard, js *jobState) {
	if s.baseCtx.Err() != nil {
		// The drain deadline fired while this job sat queued.
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusCanceled
			j.Error = "canceled during drain"
		})
		return
	}
	if js.mode == ModeMinimize {
		s.runMinimize(sh, js)
		return
	}
	start := time.Now()
	s.mu.Lock()
	js.job.Status = StatusRunning
	submitted := js.job.SubmittedAt
	s.mu.Unlock()
	s.histQueueWait.Observe(start.Sub(submitted).Seconds())
	// The request fragment's root accumulates per-attempt children, so a
	// retried job's trace shows every attempt.
	reqRoot := js.reqTrace.Root()
	analyzeSpan := reqRoot.Child("analyze")
	analyzeSpan.SetInt("queue_wait_us", start.Sub(submitted).Microseconds())
	analyzeSpan.SetInt("attempt", int64(js.retries))
	defer analyzeSpan.End()

	if s.cfg.BeforeAnalyze != nil {
		s.cfg.BeforeAnalyze()
	}
	if s.cfg.analyzeHook != nil {
		if herr := s.cfg.analyzeHook(js.retries); herr != nil {
			if s.maybeRetry(sh, js, herr) {
				return
			}
			s.finish(sh, js, func(j *Job) {
				j.Status = StatusFailed
				j.Error = herr.Error()
			})
			return
		}
	}
	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	// Injected solver stall: the worker sits on the job as a wedged
	// search would, but still honors cancellation — a stall must never
	// outlive the drain deadline or the job timeout.
	if d := s.cfg.Faults.Delay(fault.SeamSolver, fault.KindStall); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	var aopts []res.Option
	if !js.overrides.empty() {
		eff, _ := s.effectiveAnalysis(js.overrides)
		aopts = append(aopts, res.WithMaxDepth(eff.MaxDepth), res.WithBeamWidth(eff.BeamWidth))
	}
	if len(js.evidence) > 0 {
		aopts = append(aopts, res.WithEvidence(js.evidence...))
	}
	if js.checkpoints != nil {
		aopts = append(aopts, res.WithCheckpoints(js.checkpoints))
	}
	// Tracing is always on inside the service: the span tree feeds the
	// trace endpoint, the per-depth solver and bisect-replay histograms,
	// and the slow-analysis log. The report itself stays byte-identical —
	// the trace is detached before rendering below.
	aopts = append(aopts, res.WithTrace(true))
	// Bridge the session's search events to any progress watchers.
	aopts = append(aopts, res.WithObserver(func(ev res.Event) { s.publish(js, ev) }))
	var r *res.Result
	var err error
	// The pprof labels let a CPU profile attribute samples to the job and
	// program under analysis (worker goroutines spawned by the search
	// inherit them; the engine refines depth_band as the frontier deepens).
	pprof.Do(ctx, pprof.Labels("job", js.job.ID, "program", sh.name), func(ctx context.Context) {
		r, err = sh.analyzer.Analyze(ctx, js.dump, aopts...)
	})
	if r == nil {
		if s.baseCtx.Err() == nil && s.maybeRetry(sh, js, err) {
			return
		}
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			if err != nil {
				j.Error = err.Error()
			}
		})
		return
	}
	// Detach the trace before rendering: stored and cached reports must
	// stay byte-deterministic, and the span tree (wall-clock timings) is
	// served separately via GET /v1/jobs/{id}/trace. Stamp the engine's
	// fragment with the request's trace identity so the stitcher hangs
	// it under this attempt's analyze span.
	tr := r.Trace
	r.Trace = nil
	if tr != nil {
		tr.TraceID = js.job.TraceID
		tr.Node = s.node()
		tr.ParentRef = analyzeSpan.Ref()
	}
	rep, jerr := r.JSON()
	if jerr != nil {
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			j.Error = jerr.Error()
		})
		return
	}
	s.histAnalysis.Observe(r.Elapsed.Seconds())
	s.observeTrace(tr)
	slog.Info("analysis complete",
		"trace_id", js.job.TraceID, "job_id", js.job.ID, "program", sh.name,
		"elapsed", r.Elapsed.Round(time.Millisecond).String())
	if s.cfg.SlowThreshold > 0 && r.Elapsed >= s.cfg.SlowThreshold {
		slog.Warn("slow analysis",
			"trace_id", js.job.TraceID, "job_id", js.job.ID, "program", sh.name,
			"elapsed", r.Elapsed.Round(time.Millisecond).String(),
			"summary", tr.Summary())
		// A slow analysis is an incident worth a post-mortem: dump the
		// flight recorder so the surrounding context (breaker trips,
		// repair churn, other slow spans) is captured alongside it.
		s.cfg.FlightRec.Dump(os.Stderr, "slow-analysis job "+js.job.ID)
	}
	s.mu.Lock()
	js.trace = tr
	s.mu.Unlock()
	if js.mode == ModeFixVerify {
		// The analysis only reproduced the failure; the verdict — the
		// job's actual report — comes from replaying the synthesized
		// suffix through the patched program.
		s.completeFixVerify(sh, js, r)
		return
	}
	// Only complete, deterministic results enter the store: a partial
	// (drained or timed-out) report depends on where the cut fell and
	// must not be served to future submitters as the answer.
	if err == nil && !r.Partial {
		s.store.Put(js.key, rep)
	}
	if r.CheckpointAnchor != nil {
		s.mu.Lock()
		s.checkpointAnchored++
		s.mu.Unlock()
	}
	bucket := bucketSignature(sh.name, r)
	s.finish(sh, js, func(j *Job) {
		j.Status = StatusDone
		j.Partial = r.Partial
		j.Report = rep
		j.Bucket = bucket
		j.Error = "" // clear any transient error surfaced between retries
	})
}

// observeTrace feeds the histograms that derive from the span tree
// rather than from in-line timers: per-depth-band solver time from the
// "depth" spans and bisect replay time from the "verify" probes.
func (s *Service) observeTrace(tr *obs.TraceData) {
	if tr == nil {
		return
	}
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "depth":
			if ns := sp.Int("solver_ns"); ns > 0 {
				if h := s.histSolver[obs.DepthBand(int(sp.Int("depth")))]; h != nil {
					h.Observe(float64(ns) / 1e9)
				}
			}
		case "verify":
			s.histBisect.Observe(float64(sp.Int("replay_ns")) / 1e9)
		}
	}
}

// Trace returns the finished analysis's span tree. The boolean is false
// when the job is unknown, not yet finished, or has no trace — a cache
// hit, a journal-replayed record, or an evicted one (the trace lives
// only in the analyzing process's memory, never in the store).
func (s *Service) Trace(id string) (*obs.TraceData, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok || js.trace == nil {
		return nil, false
	}
	return js.trace, true
}

// TraceFragments returns every span fragment this node recorded for a
// job: the request-scoped fragment (snapshotted live, so an in-flight
// job already shows its submit and queue spans) followed by the
// finished analysis's span tree. Empty for cache hits and replayed or
// evicted records — this node did no traced work for those.
func (s *Service) TraceFragments(id string) []*obs.TraceData {
	s.mu.Lock()
	js, ok := s.jobs[id]
	var reqTrace *obs.Trace
	var analysis *obs.TraceData
	if ok {
		reqTrace = js.reqTrace
		analysis = js.trace
	}
	s.mu.Unlock()
	var frags []*obs.TraceData
	if f := reqTrace.Finish(); f != nil {
		frags = append(frags, f)
	}
	if analysis != nil {
		frags = append(frags, analysis)
	}
	return frags
}

// finish applies the terminal mutation, updates counters and buckets,
// journals the outcome, releases waiters, and ends any progress streams
// with a terminal status event.
func (s *Service) finish(sh *shard, js *jobState, mut func(*Job)) {
	s.mu.Lock()
	mut(&js.job)
	js.job.FinishedAt = time.Now()
	// The decoded dump (a full memory image) and the compiled evidence are
	// only needed for analysis; dropping them here keeps the long-lived
	// jobs map lightweight.
	js.dump = nil
	js.evidence = nil
	js.checkpoints = nil
	switch js.job.Status {
	case StatusDone:
		sh.completed++
		s.completed++
		s.addBucketLocked(js.job.Bucket, js.job.ID)
	case StatusFailed:
		sh.failed++
		s.failed++
	case StatusCanceled:
		s.canceled++
	}
	s.recordDoneLocked(js)
	rec := journalJobRecord(js)
	subs := js.subs
	js.subs = nil
	status := js.job.Status
	elapsed := js.job.FinishedAt.Sub(js.job.SubmittedAt)
	s.mu.Unlock()
	if root := js.reqTrace.Root(); root != nil {
		root.SetStr("status", string(status))
		root.End()
	}
	s.cfg.FlightRec.Record(obs.FlightEvent{
		Kind: "span", TraceID: js.job.TraceID, JobID: js.job.ID,
		Msg: fmt.Sprintf("request %s in %s (program %s)", status, elapsed.Round(time.Millisecond), js.job.ProgramName),
	})
	s.journalAppend(journalEntry{T: "job", Job: rec})
	close(js.done)
	// Detaching the subscribers above made this goroutine each channel's
	// only sender, so the terminal status line — the one event the stream
	// contract guarantees — can always be delivered: a buffer still full
	// of undrained progress events sacrifices one of them for it.
	final := ProgressEvent{Kind: "status", Status: status}
	for _, sub := range subs {
		if n := sub.dropped.Load(); n > 0 {
			// Best-effort gap marker before the stream closes; a full
			// buffer keeps the loss visible via resd_events_dropped_total.
			select {
			case sub.ch <- ProgressEvent{Kind: "dropped", Dropped: n}:
				sub.dropped.Store(0)
			default:
			}
		}
		select {
		case sub.ch <- final:
		default:
			select {
			case <-sub.ch:
			default:
			}
			sub.ch <- final
		}
		close(sub.ch)
	}
}

func (s *Service) addBucketLocked(bucket, id string) {
	if bucket == "" {
		return
	}
	s.buckets[bucket] = append(s.buckets[bucket], id)
}

// removeBucketLocked drops one job from a bucket (requeue path). Caller
// holds s.mu.
func (s *Service) removeBucketLocked(bucket, id string) {
	if bucket == "" {
		return
	}
	ids := s.buckets[bucket]
	for i, v := range ids {
		if v == id {
			s.buckets[bucket] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(s.buckets[bucket]) == 0 {
		delete(s.buckets, bucket)
	}
}

// Job returns a snapshot of the job with the given ID. A complete job
// whose in-memory record was evicted by the MaxJobs/JobRetention bounds
// is reconstructed from the result store, so result polls survive
// eviction.
func (s *Service) Job(id string) (Job, bool) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	var snap Job
	if ok {
		snap = js.job
	}
	s.mu.Unlock()
	if !ok {
		return s.evictedJob(id)
	}
	return snap, true
}

// Wait blocks until the job reaches a terminal status (or ctx ends) and
// returns its final snapshot.
func (s *Service) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		if job, ok := s.evictedJob(id); ok {
			return job, nil
		}
		return Job{}, ErrUnknownJob
	}
	select {
	case <-js.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return js.job, nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Bucket is one crash-dedup group: every member job shares a root-cause
// (or suffix) signature, so a bucket is one underlying defect.
type Bucket struct {
	Key    string   `json:"key"`
	Count  int      `json:"count"`
	JobIDs []string `json:"job_ids"`
}

// Buckets returns the dedup groups, largest first (ties by key).
func (s *Service) Buckets() []Bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Bucket, 0, len(s.buckets))
	for k, ids := range s.buckets {
		out = append(out, Bucket{Key: k, Count: len(ids), JobIDs: append([]string(nil), ids...)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ShardMetrics is one program pool's counters.
type ShardMetrics struct {
	Program    string `json:"program"`
	Name       string `json:"name,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	Submitted  uint64 `json:"submitted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Cached     uint64 `json:"cached"`
	Rejected   uint64 `json:"rejected"`
}

// Metrics is a consistent snapshot of service health.
type Metrics struct {
	QueueDepth   int         `json:"queue_depth"`
	Submitted    uint64      `json:"submitted"`
	Completed    uint64      `json:"completed"`
	Failed       uint64      `json:"failed"`
	Canceled     uint64      `json:"canceled"`
	Rejected     uint64      `json:"rejected"`
	Coalesced    uint64      `json:"coalesced"`
	Retried      uint64      `json:"retried"`
	CacheHits    uint64      `json:"cache_hits"`
	CacheMisses  uint64      `json:"cache_misses"`
	CacheHitRate float64     `json:"cache_hit_rate"`
	Store        store.Stats `json:"store"`
	Jobs         int         `json:"jobs"`
	JobsEvicted  uint64      `json:"jobs_evicted"`
	Buckets      int         `json:"buckets"`
	Programs     int         `json:"programs"`
	Draining     bool        `json:"draining"`
	// EvidenceAttached counts accepted submissions that carried an
	// evidence attachment; EvidenceSources breaks them down per kind.
	EvidenceAttached uint64            `json:"evidence_attached"`
	EvidenceSources  map[string]uint64 `json:"evidence_sources,omitempty"`
	// CheckpointAttached counts accepted submissions that carried a
	// checkpoint-ring attachment; CheckpointAnchored counts completed
	// analyses whose search anchored on one of its checkpoints.
	CheckpointAttached uint64 `json:"checkpoint_attached"`
	CheckpointAnchored uint64 `json:"checkpoint_anchored"`
	// AttachmentsDegraded counts submissions whose evidence or checkpoint
	// attachment failed to decode and was dropped: the analysis ran
	// without it instead of rejecting the dump.
	AttachmentsDegraded uint64 `json:"attachments_degraded,omitempty"`
	// FixVerifyTotal counts completed fix verifications; FixVerifyVerdicts
	// breaks them down per verdict.
	FixVerifyTotal    uint64            `json:"fixverify_total,omitempty"`
	FixVerifyVerdicts map[string]uint64 `json:"fixverify_verdicts,omitempty"`
	// MinimizeTotal counts completed minimizations; MinimizeRuns the
	// analyzer re-runs they spent; MinimizeReductions the reductions that
	// survived (kept because the cause key was preserved).
	MinimizeTotal      uint64       `json:"minimize_total,omitempty"`
	MinimizeRuns       uint64       `json:"minimize_runs,omitempty"`
	MinimizeReductions uint64       `json:"minimize_reductions,omitempty"`
	Journal            JournalStats `json:"journal,omitzero"`
	// JournalReplayed counts entries restored from the journal at startup.
	JournalReplayed int            `json:"journal_replayed,omitempty"`
	Shards          []ShardMetrics `json:"shards"`
}

// Metrics returns a snapshot of all counters.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Submitted: s.submitted, Completed: s.completed, Failed: s.failed,
		Canceled: s.canceled, Rejected: s.rejected, Coalesced: s.coalesced,
		Retried:   s.retried,
		CacheHits: s.cacheHits, CacheMisses: s.cacheMisses,
		Jobs: len(s.jobs), JobsEvicted: s.jobsEvicted,
		Buckets: len(s.buckets), Programs: len(s.shards),
		Draining:            s.draining,
		JournalReplayed:     s.journalReplayed,
		EvidenceAttached:    s.evidenceAttached,
		CheckpointAttached:  s.checkpointAttached,
		CheckpointAnchored:  s.checkpointAnchored,
		AttachmentsDegraded: s.attachmentsDegraded,
		FixVerifyTotal:      s.fixverifyTotal,
		MinimizeTotal:       s.minimizeTotal,
		MinimizeRuns:        s.minimizeRuns,
		MinimizeReductions:  s.minimizeReductions,
	}
	if len(s.fixverifyVerdicts) > 0 {
		m.FixVerifyVerdicts = make(map[string]uint64, len(s.fixverifyVerdicts))
		for k, v := range s.fixverifyVerdicts {
			m.FixVerifyVerdicts[k] = v
		}
	}
	if len(s.evidenceKinds) > 0 {
		m.EvidenceSources = make(map[string]uint64, len(s.evidenceKinds))
		for k, v := range s.evidenceKinds {
			m.EvidenceSources[k] = v
		}
	}
	if total := m.CacheHits + m.CacheMisses; total > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(total)
	}
	for id, sh := range s.shards {
		depth := len(sh.queue)
		m.QueueDepth += depth
		m.Shards = append(m.Shards, ShardMetrics{
			Program: id, Name: sh.name, QueueDepth: depth,
			Submitted: sh.submitted, Completed: sh.completed,
			Failed: sh.failed, Cached: sh.cached, Rejected: sh.rejected,
		})
	}
	s.mu.Unlock()
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Program < m.Shards[j].Program })
	m.Store = s.store.Stats()
	if s.cfg.Journal != nil {
		m.Journal = s.cfg.Journal.Stats()
	}
	return m
}

// MetricsSnapshot renders every service metric as an obs.Snapshot —
// the single source of truth behind GET /metrics (Prometheus text via
// obs.WriteProm) and cluster federation (obs.NodeSnapshot JSON, merged
// by GET /v1/cluster/metrics).
func (s *Service) MetricsSnapshot() obs.Snapshot {
	m := s.Metrics()
	snap := obs.Snapshot{
		obs.Gauge("resd_queue_depth", "Dumps queued across all shards.", float64(m.QueueDepth)),
		obs.Counter("resd_submitted_total", "Dumps accepted (fresh, cached, or coalesced).", float64(m.Submitted)),
		obs.Counter("resd_completed_total", "Analyses finished successfully.", float64(m.Completed)),
		obs.Counter("resd_failed_total", "Analyses that failed.", float64(m.Failed)),
		obs.Counter("resd_canceled_total", "Jobs canceled during drain.", float64(m.Canceled)),
		obs.Counter("resd_rejected_total", "Submissions rejected by backpressure.", float64(m.Rejected)),
		obs.Counter("resd_coalesced_total", "Duplicate submissions merged onto in-flight jobs.", float64(m.Coalesced)),
		obs.Counter("resd_cache_hits_total", "Submissions served from the result store.", float64(m.CacheHits)),
		obs.Counter("resd_cache_misses_total", "Submissions that required fresh analysis.", float64(m.CacheMisses)),
		obs.Gauge("resd_cache_hit_rate", "cache_hits / (cache_hits + cache_misses).", m.CacheHitRate),
		obs.Gauge("resd_store_entries", "Result-store memory-tier population.", float64(m.Store.Entries)),
		obs.Counter("resd_store_disk_hits_total", "Store gets answered by the disk tier.", float64(m.Store.DiskHits)),
		obs.Counter("resd_store_evictions_total", "LRU evictions from the store memory tier.", float64(m.Store.Evictions)),
		obs.Gauge("resd_buckets", "Distinct crash-dedup buckets.", float64(m.Buckets)),
		obs.Gauge("resd_programs", "Registered program shards.", float64(m.Programs)),
		obs.Gauge("resd_jobs", "Job records retained in memory.", float64(m.Jobs)),
		obs.Counter("resd_jobs_evicted_total", "Terminal job records evicted by the MaxJobs/JobRetention bounds.", float64(m.JobsEvicted)),
		obs.Counter("resd_jobs_retried_total", "Failed analyses re-queued by the retry policy.", float64(m.Retried)),
		obs.Counter("resd_evidence_attached_total", "Accepted submissions carrying an evidence attachment.", float64(m.EvidenceAttached)),
	}
	kinds := make([]string, 0, len(m.EvidenceSources))
	for k := range m.EvidenceSources {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		snap = append(snap, obs.Counter("resd_evidence_sources_total",
			"Evidence sources attached to accepted submissions, per kind.",
			float64(m.EvidenceSources[k])).With("kind", k))
	}
	snap = append(snap,
		obs.Counter("resd_fixverify_total", "Completed fix verifications.", float64(m.FixVerifyTotal)),
	)
	verdicts := make([]string, 0, len(m.FixVerifyVerdicts))
	for v := range m.FixVerifyVerdicts {
		verdicts = append(verdicts, v)
	}
	sort.Strings(verdicts)
	for _, v := range verdicts {
		snap = append(snap, obs.Counter("resd_fixverify_verdicts_total",
			"Completed fix verifications, per verdict.",
			float64(m.FixVerifyVerdicts[v])).With("verdict", v))
	}
	snap = append(snap,
		obs.Counter("resd_minimize_total", "Completed minimizations.", float64(m.MinimizeTotal)),
		obs.Counter("resd_minimize_runs_total", "Analyzer re-runs spent by minimizations.", float64(m.MinimizeRuns)),
		obs.Counter("resd_minimize_reductions_total", "Reductions kept by minimizations (cause key preserved).", float64(m.MinimizeReductions)),
	)
	snap = append(snap,
		obs.Counter("resd_checkpoint_attached_total", "Accepted submissions carrying a checkpoint-ring attachment.", float64(m.CheckpointAttached)),
		obs.Counter("resd_checkpoint_anchored_total", "Completed analyses anchored on a recorded checkpoint.", float64(m.CheckpointAnchored)),
		obs.Counter("resd_attachments_degraded_total", "Corrupt evidence/checkpoint attachments dropped at submit; the analysis ran without them.", float64(m.AttachmentsDegraded)),
		obs.Counter("resd_journal_corrupt_entries_total", "Corrupt mid-file journal entries skipped during replay.", float64(m.Journal.CorruptEntries)),
		obs.Counter("resd_store_replica_hits_total", "Store gets answered by the cluster read-through fetch.", float64(m.Store.ReplicaHits)),
		obs.Counter("resd_journal_appends_total", "Entries appended to the job journal.", float64(m.Journal.Appends)),
		obs.Counter("resd_journal_compactions_total", "Journal compactions into a snapshot.", float64(m.Journal.Compactions)),
		obs.Gauge("resd_journal_replayed", "Journal entries replayed at startup.", float64(m.JournalReplayed)),
		obs.Counter("resd_events_dropped_total", "Progress events dropped by slow NDJSON watchers.", float64(s.eventsDropped.Load())),
		obs.Gauge("resd_build_info", "Build metadata; the value is always 1.", 1).
			With("version", obs.Version, "go_version", runtime.Version()),
		obs.HistogramMetric("resd_analysis_seconds", "End-to-end analysis wall time.", s.histAnalysis.Snapshot()),
		obs.HistogramMetric("resd_queue_wait_seconds", "Time a job waited on its shard queue before analysis started.", s.histQueueWait.Snapshot()),
	)
	for _, band := range obs.DepthBands {
		snap = append(snap, obs.HistogramMetric("resd_solver_depth_seconds",
			"Solver time per frontier depth, banded by depth.",
			s.histSolver[band].Snapshot()).With("depth_band", band))
	}
	snap = append(snap, obs.HistogramMetric("resd_bisect_replay_seconds",
		"Forward-replay time per checkpoint-bisect verification probe.", s.histBisect.Snapshot()))
	for _, op := range []string{"get", "put"} {
		snap = append(snap, obs.HistogramMetric("resd_store_op_seconds",
			"Result-store operation latency, per operation.",
			s.histStoreOp[op].Snapshot()).With("op", op))
	}
	for _, sh := range m.Shards {
		snap = append(snap, obs.Gauge("resd_shard_queue_depth", "Dumps queued per program shard.",
			float64(sh.QueueDepth)).With("program", sh.Program, "name", sh.Name))
	}
	for _, sh := range m.Shards {
		snap = append(snap, obs.Counter("resd_shard_submitted_total", "Dumps accepted per program shard.",
			float64(sh.Submitted)).With("program", sh.Program, "name", sh.Name))
	}
	for _, sh := range m.Shards {
		snap = append(snap, obs.Counter("resd_shard_cached_total", "Cache-hit responses per program shard.",
			float64(sh.Cached)).With("program", sh.Program, "name", sh.Name))
	}
	snap = append(snap, obs.RuntimeMetrics(s.start)...)
	return snap
}

// Shutdown drains the service: new submissions are rejected with
// ErrDraining, queued work keeps running, and Shutdown returns when every
// worker has exited. If ctx ends first, in-flight analyses are canceled —
// they finish immediately with partial results (recorded on their jobs,
// never cached) and queued-but-unstarted jobs are marked canceled.
// Shutdown is idempotent; concurrent calls all wait for the same drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, sh := range s.shards {
			close(sh.queue)
		}
	}
	// Jobs waiting out a retry backoff sit on timers, not queues: cancel
	// them now so their waiters release and their outcome is journaled —
	// an abandoned timer would strand the job as silently never-finished.
	pending := s.pendingRetries
	s.pendingRetries = nil
	s.mu.Unlock()
	for js, rec := range pending {
		rec.timer.Stop() // a timer that already fired finds its registration gone
		s.finish(rec.sh, js, func(j *Job) {
			j.Status = StatusCanceled
			j.Error = "canceled during drain (retry pending)"
		})
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.finalizeJournal()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		s.finalizeJournal()
		return ctx.Err()
	}
}

// finalizeJournal compacts the journal once the drain completes, so the
// next start replays one snapshot instead of the whole append history.
func (s *Service) finalizeJournal() {
	if s.cfg.Journal == nil {
		return
	}
	s.mu.Lock()
	snap := s.journalSnapshotLocked()
	s.mu.Unlock()
	if s.cfg.Journal.Compact(snap) == nil {
		s.mirrorSnapshot(snap)
	}
}

// bucketSignature derives the dedup key from a completed analysis. The
// strongest signal is the root-cause key (stable across manifestations of
// one bug — the paper's fix for WER over-splitting); with no cause, a
// synthesized suffix's schedule shape still groups alike failures; with
// neither, the verdict is all there is.
func bucketSignature(app string, r *res.Result) string {
	if r.Cause != nil {
		return app + "|" + r.Cause.Key()
	}
	if r.Suffix != nil && len(r.Suffix.Steps) > 0 {
		h := sha256.New()
		for _, st := range r.Suffix.Steps {
			fmt.Fprintln(h, st.String())
		}
		return app + "|suffix:" + hex.EncodeToString(h.Sum(nil)[:6])
	}
	if r.HardwareSuspect {
		return app + "|hardware-suspect"
	}
	return app + "|no-cause"
}

// bucketFromReport recovers the dedup key from a stored report (the
// cache-hit path, where no res.Result exists in memory). It mirrors
// bucketSignature over the report's exported schema, res.ReportJSON, so
// a cached job lands in the same bucket a fresh analysis would.
func bucketFromReport(app string, rep []byte) string {
	// Service-mode reports (fix verdicts, minimal repros) carry a "kind"
	// discriminator that analysis reports never do; they describe work on
	// a failure, not a failure, so they never join crash buckets.
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(rep, &probe); err == nil && probe.Kind != "" {
		return ""
	}
	var parsed res.ReportJSON
	if err := json.Unmarshal(rep, &parsed); err != nil {
		return app + "|unparseable-report"
	}
	if parsed.Cause != nil && parsed.Cause.Key != "" {
		return app + "|" + parsed.Cause.Key
	}
	if parsed.Suffix != nil && len(parsed.Suffix.Steps) > 0 {
		h := sha256.New()
		for _, st := range parsed.Suffix.Steps {
			fmt.Fprintln(h, st)
		}
		return app + "|suffix:" + hex.EncodeToString(h.Sum(nil)[:6])
	}
	if parsed.Verdict == "hardware-suspect" {
		return app + "|hardware-suspect"
	}
	return app + "|no-cause"
}

package service

import (
	"sync/atomic"

	"res"
)

// ProgressEvent is one entry of a job's progress stream (the NDJSON
// lines of GET /v1/jobs/{id}/events): a bridged search event from the
// analysis session, a "dropped" gap marker, or the terminal "status"
// marker that ends the stream. Node-level events are deliberately not
// bridged — one line per backward-step attempt would swamp the wire;
// depth advances, feasible suffixes, and the periodic solver heartbeat
// carry the signal.
type ProgressEvent struct {
	// Kind is "depth", "suffix", "solver", "dropped", or "status".
	Kind string `json:"kind"`
	// Depth is the suffix depth the event concerns.
	Depth int `json:"depth,omitempty"`
	// Attempts/Feasible/SolverCalls snapshot the cumulative search
	// statistics at emission time.
	Attempts    int `json:"attempts,omitempty"`
	Feasible    int `json:"feasible,omitempty"`
	SolverCalls int `json:"solver_calls,omitempty"`
	// Dropped, set on "dropped" records only, is how many events this
	// watcher lost to slow-consumer drops since its last delivered
	// event — the stream's gaps are marked, never silent. The wire shape
	// is {"kind":"dropped","n":N}.
	Dropped uint64 `json:"n,omitempty"`
	// Status is the job's terminal status, set on the final "status"
	// event only.
	Status Status `json:"status,omitempty"`
}

// progressSub is one watcher of a job's progress stream. The channel is
// buffered; a watcher that falls behind loses intermediate events, and
// the loss is surfaced: dropped accumulates the gap, and the next event
// that fits is preceded by a "dropped" record carrying the count.
type progressSub struct {
	ch      chan ProgressEvent
	dropped atomic.Uint64
}

// subscriberBuffer bounds each watcher's in-flight events.
const subscriberBuffer = 64

// publish bridges one search event from an analysis session to the
// job's watchers. It runs synchronously on the analyzing goroutine, so
// it must never block: slow watchers drop events.
func (s *Service) publish(js *jobState, ev res.Event) {
	var pe ProgressEvent
	switch ev.Kind {
	case res.EventDepth:
		pe = ProgressEvent{Kind: "depth"}
	case res.EventSuffix:
		pe = ProgressEvent{Kind: "suffix"}
	case res.EventSolver:
		pe = ProgressEvent{Kind: "solver"}
	default:
		return // EventNode: too chatty for the wire
	}
	pe.Depth = ev.Depth
	pe.Attempts = ev.Stats.Attempts
	pe.Feasible = ev.Stats.Feasible
	pe.SolverCalls = ev.Stats.SolverCalls

	s.mu.Lock()
	if len(js.subs) == 0 {
		s.mu.Unlock()
		return
	}
	subs := append([]*progressSub(nil), js.subs...)
	s.mu.Unlock()
	for _, sub := range subs {
		if n := sub.dropped.Load(); n > 0 {
			// Mark the gap before resuming the stream. If even the gap
			// record does not fit, the gap just grew — and this event is
			// part of it.
			select {
			case sub.ch <- ProgressEvent{Kind: "dropped", Dropped: n}:
				sub.dropped.Store(0)
			default:
				sub.dropped.Add(1)
				s.eventsDropped.Add(1)
				continue
			}
		}
		select {
		case sub.ch <- pe:
		default:
			sub.dropped.Add(1)
			s.eventsDropped.Add(1)
		}
	}
}

// Watch subscribes to a job's progress events. The returned channel
// delivers bridged search events while the job runs and is closed after
// the terminal "status" event; cancel detaches early (the channel is
// then closed by the job's completion, or garbage-collected with it).
// A job that is already terminal — including one evicted to the store —
// yields a single status event. Unknown IDs return ErrUnknownJob.
func (s *Service) Watch(id string) (<-chan ProgressEvent, func(), error) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	if ok && !js.job.Status.Terminal() {
		sub := &progressSub{ch: make(chan ProgressEvent, subscriberBuffer)}
		js.subs = append(js.subs, sub)
		s.mu.Unlock()
		cancel := func() {
			s.mu.Lock()
			for i, x := range js.subs {
				if x == sub {
					js.subs = append(js.subs[:i], js.subs[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
		}
		return sub.ch, cancel, nil
	}
	var status Status
	if ok {
		status = js.job.Status
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
		job, found := s.evictedJob(id)
		if !found {
			return nil, nil, ErrUnknownJob
		}
		status = job.Status
	}
	ch := make(chan ProgressEvent, 1)
	ch <- ProgressEvent{Kind: "status", Status: status}
	close(ch)
	return ch, func() {}, nil
}

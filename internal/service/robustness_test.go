package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"res/internal/fault"
	"res/internal/workload"
)

// TestJournalSkipsCorruptMiddleEntries is the bit-flipped-middle
// regression: one damaged entry mid-file costs exactly that entry, not
// the history behind it, and the damage is counted. A torn final line
// (crash mid-append) still ends replay silently.
func TestJournalSkipsCorruptMiddleEntries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e := journalEntry{T: "program", Program: &JournalProgram{
			Name:   "p",
			Source: "nop\nhalt\n",
		}}
		if _, err := j.Append(e, 0); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Damage the file the way a bad sector does: clobber a middle line
	// (same length, so it stays one line) and tear the tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != 6 {
		t.Fatalf("journal has %d lines, want 6", len(lines))
	}
	lines[2] = bytes.Repeat([]byte("x"), len(lines[2]))
	damaged := append(bytes.Join(lines, []byte("\n")), '\n')
	damaged = append(damaged, []byte(`{"t":"progr`)...) // torn tail, no newline
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	entries, err := reopened.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("replayed %d entries, want 5 (6 minus the corrupt one; torn tail silent)", len(entries))
	}
	if st := reopened.Stats(); st.CorruptEntries != 1 {
		t.Fatalf("CorruptEntries = %d, want 1", st.CorruptEntries)
	}

	// End to end: a service over the damaged journal replays the
	// survivors and surfaces the damage in its metrics.
	svc := New(Config{Analysis: AnalysisConfig{MaxDepth: 8, MaxNodes: 500}, Journal: reopened})
	defer svc.Shutdown(context.Background())
	m := svc.Metrics()
	if m.Journal.CorruptEntries != 1 {
		t.Fatalf("Metrics().Journal.CorruptEntries = %d, want 1", m.Journal.CorruptEntries)
	}
	if m.JournalReplayed != 5 {
		t.Fatalf("JournalReplayed = %d, want 5", m.JournalReplayed)
	}
}

// TestJournalFaultSeamCorruptsPersistedLine: the decode-seam injector
// damages the line on disk — what ReadAll later sees — not the entry the
// caller handed in.
func TestJournalFaultSeamCorruptsPersistedLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetFaults(fault.New(7, fault.Rule{
		Seam: fault.SeamDecode, Kind: fault.KindJournalCorrupt, P: 1,
	}))
	e := journalEntry{T: "program", Program: &JournalProgram{Source: "nop\nhalt\n"}}
	if _, err := j.Append(e, 0); err != nil {
		t.Fatal(err)
	}
	j.SetFaults(nil)
	if _, err := j.Append(e, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	if bytes.Equal(lines[0], lines[1]) {
		t.Fatal("injected corruption left the persisted line pristine")
	}
}

// TestJitterDelayBounds: jittered retry delays stay inside [d/2, d) —
// never zero, never past the un-jittered backoff.
func TestJitterDelayBounds(t *testing.T) {
	d := 800 * time.Millisecond
	for i := 0; i < 1000; i++ {
		got := jitterDelay(d)
		if got < d/2 || got >= d {
			t.Fatalf("jitterDelay(%v) = %v, want in [%v, %v)", d, got, d/2, d)
		}
	}
	if got := jitterDelay(0); got != 0 {
		t.Fatalf("jitterDelay(0) = %v, want 0", got)
	}
}

// TestSolverStallHonorsJobTimeout: an injected solver stall longer than
// the job timeout must not wedge the worker — the job finishes (the
// search runs under an already-expired context and fails or degrades),
// and the service still drains promptly.
func TestSolverStallHonorsJobTimeout(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{
		ShardWorkers: 1,
		Analysis:     AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
		JobTimeout:   150 * time.Millisecond,
		Faults: fault.New(3, fault.Rule{
			Seam: fault.SeamSolver, Kind: fault.KindStall, P: 1, Delay: 10 * time.Second,
		}),
	})
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dump := failingDumps(t, bug, 1)[0]
	job, err := svc.Submit(progID, dump)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done, err := svc.Wait(ctx, job.ID)
	if err != nil {
		t.Fatalf("stalled job never terminalized: %v", err)
	}
	if !done.Status.Terminal() {
		t.Fatalf("job status %v, want terminal", done.Status)
	}
	if err := svc.Shutdown(ctx); err != nil && !strings.Contains(err.Error(), "drain") {
		t.Fatal(err)
	}
}

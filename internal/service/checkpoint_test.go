package service

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"res/internal/checkpoint"
	"res/internal/workload"
)

// checkpointedSubmission produces one failing dump plus its recorded
// checkpoint ring, both in wire form.
func checkpointedSubmission(t testing.TB, bug *workload.Bug) (dump, cks []byte) {
	t.Helper()
	d, ring, _, err := bug.FindFailureCheckpointed(60, checkpoint.Config{Every: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Empty() {
		t.Fatal("recorder produced no checkpoints")
	}
	dump, err = d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return dump, ring.Encode()
}

// TestCheckpointCacheIdentity is the checkpoint-aware caching contract:
// the same dump with and without a checkpoint ring are distinct tuples,
// identical rings cache-hit, the anchored job's report carries the
// checkpoint_anchor, both tuples bucket to the same root cause, and the
// counters reflect the attachments.
func TestCheckpointCacheIdentity(t *testing.T) {
	bug := workload.LongPrefix(400)
	svc := New(Config{ShardWorkers: 2, Analysis: AnalysisConfig{MaxDepth: 12, MaxNodes: 4000}})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dump, cks := checkpointedSubmission(t, bug)

	plain, err := svc.Submit(progID, dump)
	if err != nil {
		t.Fatal(err)
	}
	withCk, err := svc.SubmitEvidenceCheckpoints(progID, dump, nil, cks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ID == withCk.ID {
		t.Fatalf("checkpoints did not change the cache identity: both jobs are %s", plain.ID)
	}
	if !withCk.Checkpointed {
		t.Fatalf("checkpoint attachment not recorded on the job: %+v", withCk)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	plainDone, err := svc.Wait(ctx, plain.ID)
	if err != nil {
		t.Fatal(err)
	}
	ckDone, err := svc.Wait(ctx, withCk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if plainDone.Status != StatusDone || ckDone.Status != StatusDone {
		t.Fatalf("jobs did not complete: %v / %v", plainDone.Status, ckDone.Status)
	}
	// Anchoring must not change which defect the dump buckets to.
	if plainDone.Bucket == "" || plainDone.Bucket != ckDone.Bucket {
		t.Fatalf("buckets differ: %q vs %q", plainDone.Bucket, ckDone.Bucket)
	}
	// The anchored job's report surfaces the anchor.
	var rep struct {
		CheckpointAnchor *struct {
			Step     uint64 `json:"step"`
			Depth    int    `json:"depth"`
			Verified bool   `json:"verified"`
		} `json:"checkpoint_anchor"`
	}
	if err := json.Unmarshal(ckDone.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointAnchor == nil {
		t.Fatalf("anchored report carries no checkpoint_anchor: %s", ckDone.Report)
	}
	if rep.CheckpointAnchor.Depth <= 0 || !rep.CheckpointAnchor.Verified {
		t.Errorf("implausible anchor: %+v", rep.CheckpointAnchor)
	}

	// Identical ring again: cache hit on the checkpoint tuple.
	again, err := svc.SubmitEvidenceCheckpoints(progID, dump, nil, cks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != withCk.ID || !again.Cached {
		t.Fatalf("identical checkpoint submission did not cache-hit: %+v", again)
	}

	// Garbage checkpoints degrade: the submission is accepted, the ring
	// is dropped, and the job lands on the plain tuple with a warning.
	degraded, err := svc.SubmitEvidenceCheckpoints(progID, dump, nil, []byte("not a ring"), nil)
	if err != nil {
		t.Fatalf("bad checkpoint attachment rejected instead of degraded: %v", err)
	}
	if degraded.ID != plain.ID {
		t.Fatalf("degraded submission landed on tuple %s, want plain tuple %s", degraded.ID, plain.ID)
	}
	if degraded.Checkpointed || len(degraded.Warnings) == 0 {
		t.Fatalf("degraded job not marked: %+v", degraded)
	}

	m := svc.Metrics()
	if m.CheckpointAttached != 2 {
		t.Errorf("CheckpointAttached = %d, want 2", m.CheckpointAttached)
	}
	if m.CheckpointAnchored != 1 {
		t.Errorf("CheckpointAnchored = %d, want 1", m.CheckpointAnchored)
	}
	if m.AttachmentsDegraded != 1 {
		t.Errorf("AttachmentsDegraded = %d, want 1", m.AttachmentsDegraded)
	}
}

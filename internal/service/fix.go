package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"res"
	"res/internal/fixverify"
	"res/internal/obs"
	"res/internal/store"
)

// Job modes beyond plain analysis. The mode is part of the job's cache
// identity (folded into the options fingerprint), so a fix verdict or a
// minimal repro can never collide with the tuple's analysis report.
const (
	// ModeFixVerify jobs verify a candidate fix: the analysis reproduces
	// the failure, then the synthesized suffix is replayed through the
	// patched program and the report is a fix verdict.
	ModeFixVerify = "fixverify"
	// ModeMinimize jobs delta-debug a finished analysis's tuple down to a
	// minimal repro that preserves the byte-identical root-cause key.
	ModeMinimize = "minimize"
)

// Sentinel errors of the fix-verification and minimization endpoints.
var (
	// ErrBadPatch rejects bytes that parse as neither the canonical
	// RESPATCH1 wire form nor the patch text format.
	ErrBadPatch = errors.New("service: bad patch")
	// ErrNoSource rejects a fix verification for a program whose assembly
	// source the service does not hold (patches are applied to source;
	// labels key the operations).
	ErrNoSource = errors.New("service: program source unavailable")
	// ErrMinimizeUnavailable rejects a minimization whose input tuple can
	// no longer be reconstructed — the job is unfinished, was evicted, or
	// its dump/attachments did not survive (memory-only store, restart).
	ErrMinimizeUnavailable = errors.New("service: minimize unavailable")
)

// fixverifyReport is the deterministic report body of a ModeFixVerify
// job: the verdict plus the cause the reproduced failure analyzed to.
// The "kind" discriminator keeps it out of crash buckets and lets
// clients tell it from an analysis report.
type fixverifyReport struct {
	Kind     string `json:"kind"` // always "fixverify"
	CauseKey string `json:"cause_key,omitempty"`
	*fixverify.Result
}

// minimizeReport is the deterministic report body of a ModeMinimize job:
// the minimization's summary plus the canonical RESMINR1 repro bytes
// (base64 in JSON) and their content fingerprint.
type minimizeReport struct {
	Kind        string `json:"kind"` // always "minimal-repro"
	CauseKey    string `json:"cause_key"`
	OrigSources int    `json:"orig_sources"`
	MinSources  int    `json:"min_sources"`
	MaxDepth    int    `json:"max_depth"`
	MaxNodes    int    `json:"max_nodes"`
	SuffixDepth int    `json:"suffix_depth"`
	Runs        int    `json:"runs"`
	Reductions  int    `json:"reductions"`
	Fingerprint string `json:"fingerprint"`
	Repro       []byte `json:"repro"`
}

// SubmitFix submits a candidate fix for verification against one failing
// dump: the service reproduces the failure (or serves the reproduction
// from cache), replays the synthesized suffix through the patched
// program, and reports a fixed / not-fixed / inconclusive verdict as the
// job's report. patchBytes is accepted in either patch form (RESPATCH1
// wire bytes or the text format). source may be "" when the program was
// registered by source (RegisterSource); otherwise it must be the
// assembly source the program was built from. Verdicts are cached by the
// (program, dump, options, patch) tuple: resubmitting the same fix for
// the same failure is a cache hit, and distinct patches get distinct
// jobs.
func (s *Service) SubmitFix(programID string, dumpBytes, patchBytes []byte, source string, o *SubmitOverrides) (Job, error) {
	return s.SubmitFixTraced(programID, dumpBytes, patchBytes, source, o, obs.TraceContext{})
}

// SubmitFixTraced is SubmitFix under an explicit distributed trace
// context.
func (s *Service) SubmitFixTraced(programID string, dumpBytes, patchBytes []byte, source string, o *SubmitOverrides, tc obs.TraceContext) (Job, error) {
	p, err := fixverify.DecodeAny(patchBytes)
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadPatch, err)
	}
	if source == "" {
		s.mu.Lock()
		rec, ok := s.sources[programID]
		s.mu.Unlock()
		if !ok {
			return Job{}, fmt.Errorf("%w: program %s was not registered by source; supply the program source", ErrNoSource, programID)
		}
		source = rec.Source
	} else {
		// A caller-supplied source must actually be the registered
		// program's source: a verdict computed against other code would be
		// confidently wrong.
		sp, aerr := res.Assemble(source)
		if aerr != nil {
			return Job{}, fmt.Errorf("%w: source does not assemble: %v", ErrNoSource, aerr)
		}
		fp, ferr := store.ProgramFingerprint(sp)
		if ferr != nil {
			return Job{}, fmt.Errorf("%w: %v", ErrNoSource, ferr)
		}
		if fp.String() != programID {
			return Job{}, fmt.Errorf("%w: source assembles to program %s, not %s", ErrNoSource, fp, programID)
		}
	}
	return s.submitTuple(programID, dumpBytes, nil, nil, o, tc, submitExtras{mode: ModeFixVerify, patch: p, src: source})
}

// MinimizeJob delta-debugs a finished analysis job's input tuple: the
// retained attachments and the archived dump are resubmitted as a
// ModeMinimize job whose report is a minimal repro — the smallest
// evidence subset and tightest budgets that still analyze to the
// byte-identical root-cause key. Requires the job to be complete
// (StatusDone, not partial) and its dump to be recoverable from the
// store's ingest archive, which needs a persistent store (resd
// -cache-dir).
func (s *Service) MinimizeJob(id string, o *SubmitOverrides) (Job, error) {
	return s.MinimizeJobTraced(id, o, obs.TraceContext{})
}

// MinimizeJobTraced is MinimizeJob under an explicit distributed trace
// context.
func (s *Service) MinimizeJobTraced(id string, o *SubmitOverrides, tc obs.TraceContext) (Job, error) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	var base Job
	var key store.Key
	var evb, ckb []byte
	if ok {
		base = js.job
		key = js.key
		evb = js.evidenceBytes
		ckb = js.checkpointBytes
		if o.empty() {
			o = js.overrides
		}
	}
	_, evicted := s.evicted[id]
	s.mu.Unlock()
	if !ok {
		if evicted {
			// Journal-replayed complete jobs also land here: the slim
			// record has the report, not the input tuple.
			return Job{}, fmt.Errorf("%w: job %s's input tuple is no longer held in memory; resubmit the dump and minimize the fresh job", ErrMinimizeUnavailable, id)
		}
		return Job{}, ErrUnknownJob
	}
	if base.Mode != "" {
		return Job{}, fmt.Errorf("%w: job %s is a %s job, not an analysis", ErrMinimizeUnavailable, id, base.Mode)
	}
	if base.Status != StatusDone || base.Partial {
		return Job{}, fmt.Errorf("%w: job %s has no complete analysis to minimize (status %s)", ErrMinimizeUnavailable, id, base.Status)
	}
	if len(base.Evidence) > 0 && evb == nil || base.Checkpointed && ckb == nil {
		return Job{}, fmt.Errorf("%w: job %s's attachments were not retained by this process; resubmit the tuple and minimize the fresh job", ErrMinimizeUnavailable, id)
	}
	dumpBytes, have := s.store.Get(store.DumpKey(key.Dump))
	if !have {
		return Job{}, fmt.Errorf("%w: the ingest archive does not hold job %s's dump (run resd with -cache-dir to archive dumps)", ErrMinimizeUnavailable, id)
	}
	return s.submitTuple(base.Program, dumpBytes, evb, ckb, o, tc, submitExtras{mode: ModeMinimize})
}

// runMinimize executes one queued ModeMinimize job. No retry policy:
// minimization is deterministic, so a failure (no root cause, canceled
// context) would only repeat.
func (s *Service) runMinimize(sh *shard, js *jobState) {
	start := time.Now()
	s.mu.Lock()
	js.job.Status = StatusRunning
	submitted := js.job.SubmittedAt
	s.mu.Unlock()
	s.histQueueWait.Observe(start.Sub(submitted).Seconds())
	span := js.reqTrace.Root().Child("minimize")
	span.SetInt("queue_wait_us", start.Sub(submitted).Microseconds())
	defer span.End()
	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	eff, _ := s.effectiveAnalysis(js.overrides)
	aopts := eff.options()
	if len(js.evidence) > 0 {
		aopts = append(aopts, res.WithEvidence(js.evidence...))
	}
	if js.checkpoints != nil {
		aopts = append(aopts, res.WithCheckpoints(js.checkpoints))
	}
	m, err := res.Minimize(ctx, sh.prog, js.dump, aopts...)
	if err != nil {
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			j.Error = err.Error()
		})
		return
	}
	span.SetInt("runs", int64(m.Runs))
	span.SetInt("reductions", int64(m.Reductions))
	rep, jerr := json.Marshal(minimizeReport{
		Kind:        "minimal-repro",
		CauseKey:    m.CauseKey,
		OrigSources: m.OrigSources,
		MinSources:  m.MinSources,
		MaxDepth:    m.MaxDepth,
		MaxNodes:    m.MaxNodes,
		SuffixDepth: m.SuffixDepth,
		Runs:        m.Runs,
		Reductions:  m.Reductions,
		Fingerprint: m.Fingerprint(),
		Repro:       m.Encode(),
	})
	if jerr != nil {
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			j.Error = jerr.Error()
		})
		return
	}
	s.store.Put(js.key, rep)
	s.mu.Lock()
	s.minimizeTotal++
	s.minimizeRuns += uint64(m.Runs)
	s.minimizeReductions += uint64(m.Reductions)
	s.mu.Unlock()
	slog.Info("minimization complete",
		"trace_id", js.job.TraceID, "job_id", js.job.ID, "program", sh.name,
		"cause_key", m.CauseKey, "sources", fmt.Sprintf("%d/%d", m.MinSources, m.OrigSources),
		"runs", m.Runs)
	s.finish(sh, js, func(j *Job) {
		j.Status = StatusDone
		j.Report = rep
		j.Error = ""
	})
}

// completeFixVerify turns a ModeFixVerify job's finished reproduction
// into a verdict: replay the synthesized suffix through the patched
// program and report fixed / not-fixed / inconclusive. Called by run()
// after the analysis; r is never nil.
func (s *Service) completeFixVerify(sh *shard, js *jobState, r *res.Result) {
	var fr *fixverify.Result
	switch {
	case r.Partial:
		fr = &fixverify.Result{
			Verdict:          fixverify.VerdictInconclusive,
			Reason:           "the reproduction analysis was cut short; no complete failure suffix to replay",
			PatchFingerprint: js.patch.Fingerprint(),
		}
	case r.Synthesized == nil:
		fr = &fixverify.Result{
			Verdict:          fixverify.VerdictInconclusive,
			Reason:           "the analysis synthesized no failure suffix to replay the patch against",
			PatchFingerprint: js.patch.Fingerprint(),
		}
	default:
		var err error
		fr, err = fixverify.Verify(js.src, js.patch, r.Synthesized, js.dump, fixverify.Config{})
		if err != nil {
			s.finish(sh, js, func(j *Job) {
				j.Status = StatusFailed
				j.Error = err.Error()
			})
			return
		}
	}
	frep := fixverifyReport{Kind: "fixverify", Result: fr}
	if r.Cause != nil {
		frep.CauseKey = r.Cause.Key()
	}
	rep, jerr := json.Marshal(frep)
	if jerr != nil {
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			j.Error = jerr.Error()
		})
		return
	}
	// A verdict built on a partial reproduction depends on where the cut
	// fell; it is reported but never cached as the tuple's answer.
	if !r.Partial {
		s.store.Put(js.key, rep)
	}
	s.mu.Lock()
	s.fixverifyTotal++
	if s.fixverifyVerdicts == nil {
		s.fixverifyVerdicts = make(map[string]uint64)
	}
	s.fixverifyVerdicts[string(fr.Verdict)]++
	s.mu.Unlock()
	slog.Info("fix verification complete",
		"trace_id", js.job.TraceID, "job_id", js.job.ID, "program", sh.name,
		"verdict", string(fr.Verdict), "patch", fr.PatchFingerprint)
	s.finish(sh, js, func(j *Job) {
		j.Status = StatusDone
		j.Partial = r.Partial
		j.Report = rep
		j.Error = ""
	})
}

package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary encoding of instruction streams. Each instruction is encoded as a
// fixed header (op + registers) followed by varint-encoded immediate and
// targets, followed by the symbol string. The format is versioned so dumps
// and program images can evolve independently.

const streamMagic = "RESISA01"

// EncodeStream writes the instruction slice to w.
func EncodeStream(w io.Writer, code []Instr) error {
	if _, err := io.WriteString(w, streamMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	if err := putUvarint(uint64(len(code))); err != nil {
		return err
	}
	for i := range code {
		in := &code[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: encoding instruction %d: %w", i, err)
		}
		hdr := [4]byte{byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2)}
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if err := putVarint(in.Imm); err != nil {
			return err
		}
		if err := putVarint(int64(in.Target)); err != nil {
			return err
		}
		if err := putVarint(int64(in.Target2)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(in.Sym))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, in.Sym); err != nil {
			return err
		}
	}
	return nil
}

// DecodeStream reads an instruction slice written by EncodeStream.
func DecodeStream(r io.Reader) ([]Instr, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		return nil, fmt.Errorf("isa: DecodeStream requires an io.ByteReader")
	}
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("isa: reading magic: %w", err)
	}
	if string(magic) != streamMagic {
		return nil, fmt.Errorf("isa: bad magic %q", magic)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("isa: reading count: %w", err)
	}
	const maxInstrs = 1 << 26
	if n > maxInstrs {
		return nil, fmt.Errorf("isa: unreasonable instruction count %d", n)
	}
	code := make([]Instr, n)
	for i := range code {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("isa: instruction %d header: %w", i, err)
		}
		in := &code[i]
		in.Op = Op(hdr[0])
		in.Rd = Reg(hdr[1])
		in.Rs1 = Reg(hdr[2])
		in.Rs2 = Reg(hdr[3])
		if in.Imm, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("isa: instruction %d imm: %w", i, err)
		}
		t, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d target: %w", i, err)
		}
		in.Target = int(t)
		if t, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("isa: instruction %d target2: %w", i, err)
		}
		in.Target2 = int(t)
		symLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d symlen: %w", i, err)
		}
		const maxSym = 1 << 16
		if symLen > maxSym {
			return nil, fmt.Errorf("isa: instruction %d: symbol too long (%d)", i, symLen)
		}
		if symLen > 0 {
			sym := make([]byte, symLen)
			if _, err := io.ReadFull(r, sym); err != nil {
				return nil, fmt.Errorf("isa: instruction %d symbol: %w", i, err)
			}
			in.Sym = string(sym)
		}
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("isa: decoded instruction %d: %w", i, err)
		}
	}
	return code, nil
}

// MarshalStream is a convenience wrapper returning the encoded bytes.
func MarshalStream(code []Instr) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeStream(&buf, code); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalStream decodes instructions from b.
func UnmarshalStream(b []byte) ([]Instr, error) {
	return DecodeStream(bytes.NewReader(b))
}

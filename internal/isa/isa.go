// Package isa defines the instruction set architecture of the word-addressed
// virtual machine that serves as the execution substrate for reverse
// execution synthesis (RES).
//
// The machine is a RISC-like three-address register machine:
//
//   - 16 general-purpose 64-bit registers r0..r15; r15 doubles as the stack
//     pointer (SP) by software convention (CALL/RET use it).
//   - A flat, word-addressed memory of 64-bit words. Addresses are word
//     indices, not byte offsets. Address 0 is an unmapped "null page"
//     sentinel: any access to it faults, which gives the workloads a
//     realistic null-dereference failure mode.
//   - Control flow by instruction index (the program counter is an index
//     into the instruction stream, not a byte address).
//
// The ISA is deliberately small but complete enough to express the
// workloads of the RES paper: arithmetic, memory traffic, conditional
// control flow, function calls with an in-memory stack, dynamic
// allocation, threads, locks, external input, and logging.
package isa

import "fmt"

// Reg identifies one of the general-purpose registers.
type Reg uint8

// NumRegs is the number of general-purpose registers per thread.
const NumRegs = 16

// SP is the conventional stack-pointer register. CALL and RET implicitly
// use it; everything else treats it as a normal register.
const SP Reg = 15

// String returns the assembly name of the register ("r0".."r14", "sp").
func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names an existing register.
func (r Reg) Valid() bool { return uint8(r) < NumRegs }

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The comment after each opcode gives the assembly syntax and
// semantics; "m[x]" denotes the memory word at address x.
const (
	OpNop Op = iota // nop

	// Data movement.
	OpConst // const rd, imm        rd <- imm
	OpMov   // mov rd, rs1          rd <- rs1

	// ALU, register-register.
	OpAdd // add rd, rs1, rs2     rd <- rs1 + rs2
	OpSub // sub rd, rs1, rs2     rd <- rs1 - rs2
	OpMul // mul rd, rs1, rs2     rd <- rs1 * rs2
	OpDiv // div rd, rs1, rs2     rd <- rs1 / rs2   (faults if rs2 == 0)
	OpMod // mod rd, rs1, rs2     rd <- rs1 % rs2   (faults if rs2 == 0)
	OpAnd // and rd, rs1, rs2     rd <- rs1 & rs2
	OpOr  // or rd, rs1, rs2      rd <- rs1 | rs2
	OpXor // xor rd, rs1, rs2     rd <- rs1 ^ rs2
	OpShl // shl rd, rs1, rs2     rd <- rs1 << (rs2 & 63)
	OpShr // shr rd, rs1, rs2     rd <- rs1 >> (rs2 & 63) (arithmetic)

	// ALU, register-immediate.
	OpAddI // addi rd, rs1, imm    rd <- rs1 + imm
	OpMulI // muli rd, rs1, imm    rd <- rs1 * imm
	OpAndI // andi rd, rs1, imm    rd <- rs1 & imm
	OpXorI // xori rd, rs1, imm    rd <- rs1 ^ imm

	// Unary.
	OpNot // not rd, rs1           rd <- ^rs1
	OpNeg // neg rd, rs1           rd <- -rs1

	// Comparisons (result is 0 or 1).
	OpCmpEq // cmpeq rd, rs1, rs2  rd <- rs1 == rs2
	OpCmpNe // cmpne rd, rs1, rs2  rd <- rs1 != rs2
	OpCmpLt // cmplt rd, rs1, rs2  rd <- rs1 <  rs2 (signed)
	OpCmpLe // cmple rd, rs1, rs2  rd <- rs1 <= rs2 (signed)

	// Memory.
	OpLoad   // load rd, rs1, imm    rd <- m[rs1 + imm]
	OpStore  // store rs1, rs2, imm  m[rs1 + imm] <- rs2
	OpLoadG  // loadg rd, imm        rd <- m[imm]
	OpStoreG // storeg rs1, imm      m[imm] <- rs1

	// Control flow. Targets are instruction indices after assembly.
	OpJmp  // jmp L                 pc <- L
	OpBr   // br rs1, LT, LF        pc <- rs1 != 0 ? LT : LF
	OpCall // call F                sp--; m[sp] <- pc+1; pc <- F
	OpRet  // ret                   pc <- m[sp]; sp++

	// Heap.
	OpAlloc // alloc rd, rs1        rd <- base of fresh rs1-word object
	OpFree  // free rs1             release object with base rs1

	// Concurrency.
	OpSpawn  // spawn F, rs1        start thread at F with r0 = rs1
	OpYield  // yield               scheduler hint (possible preemption)
	OpLock   // lock rs1            acquire mutex at address rs1 (blocking)
	OpUnlock // unlock rs1          release mutex at address rs1

	// Environment.
	OpInput  // input rd, imm       rd <- next value of input channel imm
	OpOutput // output rs1, imm     append (pc, imm, rs1) to the output log
	OpAssert // assert rs1          fault if rs1 == 0
	OpHalt   // halt                stop this thread (exit program if main)

	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpMulI: "muli", OpAndI: "andi", OpXorI: "xori",
	OpNot: "not", OpNeg: "neg",
	OpCmpEq: "cmpeq", OpCmpNe: "cmpne", OpCmpLt: "cmplt", OpCmpLe: "cmple",
	OpLoad: "load", OpStore: "store", OpLoadG: "loadg", OpStoreG: "storeg",
	OpJmp: "jmp", OpBr: "br", OpCall: "call", OpRet: "ret",
	OpAlloc: "alloc", OpFree: "free",
	OpSpawn: "spawn", OpYield: "yield", OpLock: "lock", OpUnlock: "unlock",
	OpInput: "input", OpOutput: "output", OpAssert: "assert", OpHalt: "halt",
}

// String returns the assembly mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// ByName maps an assembly mnemonic back to its opcode. The second result
// is false if the mnemonic is unknown.
func ByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return OpNop, false
}

// Instr is a single decoded instruction. Not every field is meaningful for
// every opcode; Validate enforces the per-opcode shape.
type Instr struct {
	Op  Op
	Rd  Reg   // destination register
	Rs1 Reg   // first source register
	Rs2 Reg   // second source register
	Imm int64 // immediate operand / memory offset / channel id

	// Target and Target2 are resolved control-flow targets (instruction
	// indices). For OpBr, Target is the taken (non-zero) destination and
	// Target2 the fall-through (zero) destination. For OpCall and OpSpawn,
	// Target is the callee entry. Sym preserves the label/function name
	// from assembly for diagnostics.
	Target  int
	Target2 int
	Sym     string
}

// operand shape descriptors.
type shape struct {
	rd, rs1, rs2, imm, target, target2 bool
}

var shapes = map[Op]shape{
	OpNop:    {},
	OpConst:  {rd: true, imm: true},
	OpMov:    {rd: true, rs1: true},
	OpAdd:    {rd: true, rs1: true, rs2: true},
	OpSub:    {rd: true, rs1: true, rs2: true},
	OpMul:    {rd: true, rs1: true, rs2: true},
	OpDiv:    {rd: true, rs1: true, rs2: true},
	OpMod:    {rd: true, rs1: true, rs2: true},
	OpAnd:    {rd: true, rs1: true, rs2: true},
	OpOr:     {rd: true, rs1: true, rs2: true},
	OpXor:    {rd: true, rs1: true, rs2: true},
	OpShl:    {rd: true, rs1: true, rs2: true},
	OpShr:    {rd: true, rs1: true, rs2: true},
	OpAddI:   {rd: true, rs1: true, imm: true},
	OpMulI:   {rd: true, rs1: true, imm: true},
	OpAndI:   {rd: true, rs1: true, imm: true},
	OpXorI:   {rd: true, rs1: true, imm: true},
	OpNot:    {rd: true, rs1: true},
	OpNeg:    {rd: true, rs1: true},
	OpCmpEq:  {rd: true, rs1: true, rs2: true},
	OpCmpNe:  {rd: true, rs1: true, rs2: true},
	OpCmpLt:  {rd: true, rs1: true, rs2: true},
	OpCmpLe:  {rd: true, rs1: true, rs2: true},
	OpLoad:   {rd: true, rs1: true, imm: true},
	OpStore:  {rs1: true, rs2: true, imm: true},
	OpLoadG:  {rd: true, imm: true},
	OpStoreG: {rs1: true, imm: true},
	OpJmp:    {target: true},
	OpBr:     {rs1: true, target: true, target2: true},
	OpCall:   {target: true},
	OpRet:    {},
	OpAlloc:  {rd: true, rs1: true},
	OpFree:   {rs1: true},
	OpSpawn:  {rs1: true, target: true},
	OpYield:  {},
	OpLock:   {rs1: true},
	OpUnlock: {rs1: true},
	OpInput:  {rd: true, imm: true},
	OpOutput: {rs1: true, imm: true},
	OpAssert: {rs1: true},
	OpHalt:   {},
}

// Shape reports which operand fields are meaningful for the opcode.
func (o Op) shape() shape { return shapes[o] }

// Validate checks that the instruction is well formed: known opcode,
// registers in range for the fields its shape uses. Control-flow target
// range checking is done by prog when the instruction stream is known.
func (in *Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	s := in.Op.shape()
	if s.rd && !in.Rd.Valid() {
		return fmt.Errorf("isa: %s: invalid rd %d", in.Op, uint8(in.Rd))
	}
	if s.rs1 && !in.Rs1.Valid() {
		return fmt.Errorf("isa: %s: invalid rs1 %d", in.Op, uint8(in.Rs1))
	}
	if s.rs2 && !in.Rs2.Valid() {
		return fmt.Errorf("isa: %s: invalid rs2 %d", in.Op, uint8(in.Rs2))
	}
	return nil
}

// IsTerminator reports whether the instruction ends a basic block:
// unconditional or conditional jumps, calls, returns, and halt. SPAWN is a
// terminator too so the spawn point is a block boundary, which gives the
// scheduler (and RES's backward walk) a clean edge for the new thread.
// LOCK and YIELD are also terminators: the concrete scheduler may switch
// threads there, so they must sit on block boundaries for the
// block-granularity schedule to be exact.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpJmp, OpBr, OpCall, OpRet, OpHalt, OpSpawn, OpYield, OpLock:
		return true
	}
	return false
}

// WritesReg reports whether the instruction writes a general-purpose
// register, and which one. CALL/RET/ALLOC manipulate SP implicitly;
// that is reported here as well so read/write set computations are exact.
func (in *Instr) WritesReg() (Reg, bool) {
	s := in.Op.shape()
	if s.rd {
		return in.Rd, true
	}
	switch in.Op {
	case OpCall, OpRet:
		return SP, true
	}
	return 0, false
}

// ReadsRegs appends the registers the instruction reads to dst and returns
// the extended slice.
func (in *Instr) ReadsRegs(dst []Reg) []Reg {
	s := in.Op.shape()
	if s.rs1 {
		dst = append(dst, in.Rs1)
	}
	if s.rs2 {
		dst = append(dst, in.Rs2)
	}
	switch in.Op {
	case OpCall, OpRet:
		dst = append(dst, SP)
	}
	return dst
}

// ReadsMem reports whether the instruction reads memory.
func (in *Instr) ReadsMem() bool {
	switch in.Op {
	case OpLoad, OpLoadG, OpRet:
		return true
	}
	return false
}

// WritesMem reports whether the instruction writes memory.
func (in *Instr) WritesMem() bool {
	switch in.Op {
	case OpStore, OpStoreG, OpCall:
		return true
	}
	return false
}

// String renders the instruction in assembly syntax (with resolved numeric
// targets when no symbol is available).
func (in *Instr) String() string {
	target := func(t int) string {
		if in.Sym != "" {
			return in.Sym
		}
		return fmt.Sprintf("@%d", t)
	}
	switch in.Op {
	case OpNop, OpRet, OpYield, OpHalt:
		return in.Op.String()
	case OpConst:
		return fmt.Sprintf("const %s, %d", in.Rd, in.Imm)
	case OpMov, OpNot, OpNeg:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpAddI, OpMulI, OpAndI, OpXorI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, %s, %d", in.Rd, in.Rs1, in.Imm)
	case OpStore:
		return fmt.Sprintf("store %s, %s, %d", in.Rs1, in.Rs2, in.Imm)
	case OpLoadG:
		return fmt.Sprintf("loadg %s, %d", in.Rd, in.Imm)
	case OpStoreG:
		return fmt.Sprintf("storeg %s, %d", in.Rs1, in.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp %s", target(in.Target))
	case OpBr:
		t2 := fmt.Sprintf("@%d", in.Target2)
		return fmt.Sprintf("br %s, %s, %s", in.Rs1, target(in.Target), t2)
	case OpCall:
		return fmt.Sprintf("call %s", target(in.Target))
	case OpAlloc:
		return fmt.Sprintf("alloc %s, %s", in.Rd, in.Rs1)
	case OpFree:
		return fmt.Sprintf("free %s", in.Rs1)
	case OpSpawn:
		return fmt.Sprintf("spawn %s, %s", target(in.Target), in.Rs1)
	case OpLock, OpUnlock, OpAssert:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case OpInput:
		return fmt.Sprintf("input %s, %d", in.Rd, in.Imm)
	case OpOutput:
		return fmt.Sprintf("output %s, %d", in.Rs1, in.Imm)
	}
	return in.Op.String()
}

package isa

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if got := Reg(0).String(); got != "r0" {
		t.Errorf("Reg(0) = %q, want r0", got)
	}
	if got := Reg(14).String(); got != "r14" {
		t.Errorf("Reg(14) = %q, want r14", got)
	}
	if got := SP.String(); got != "sp" {
		t.Errorf("SP = %q, want sp", got)
	}
}

func TestRegValid(t *testing.T) {
	for r := 0; r < NumRegs; r++ {
		if !Reg(r).Valid() {
			t.Errorf("Reg(%d).Valid() = false", r)
		}
	}
	if Reg(NumRegs).Valid() {
		t.Error("Reg(NumRegs).Valid() = true")
	}
}

func TestOpNamesRoundTrip(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			t.Fatalf("opcode %d has no name", op)
		}
		back, ok := ByName(name)
		if !ok || back != op {
			t.Errorf("ByName(%q) = %v, %v; want %v, true", name, back, ok, op)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("frobnicate"); ok {
		t.Error("ByName(frobnicate) succeeded")
	}
}

func TestOpValid(t *testing.T) {
	if !OpHalt.Valid() {
		t.Error("OpHalt invalid")
	}
	if Op(200).Valid() {
		t.Error("Op(200) valid")
	}
}

func TestShapesCoverAllOpcodes(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		if _, ok := shapes[op]; !ok {
			t.Errorf("opcode %v has no shape entry", op)
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		in   Instr
		ok   bool
	}{
		{"nop", Instr{Op: OpNop}, true},
		{"const ok", Instr{Op: OpConst, Rd: 3, Imm: 7}, true},
		{"const bad rd", Instr{Op: OpConst, Rd: 16}, false},
		{"add ok", Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, true},
		{"add bad rs1", Instr{Op: OpAdd, Rd: 1, Rs1: 99, Rs2: 3}, false},
		{"store bad rs2", Instr{Op: OpStore, Rs1: 0, Rs2: 77}, false},
		{"bad opcode", Instr{Op: Op(250)}, false},
	}
	for _, tc := range tests {
		err := tc.in.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestIsTerminator(t *testing.T) {
	term := []Op{OpJmp, OpBr, OpCall, OpRet, OpHalt, OpSpawn, OpYield, OpLock}
	for _, op := range term {
		in := Instr{Op: op}
		if !in.IsTerminator() {
			t.Errorf("%v should be a terminator", op)
		}
	}
	nonTerm := []Op{OpNop, OpConst, OpAdd, OpLoad, OpStore, OpUnlock, OpAssert, OpInput, OpOutput, OpAlloc, OpFree}
	for _, op := range nonTerm {
		in := Instr{Op: op}
		if in.IsTerminator() {
			t.Errorf("%v should not be a terminator", op)
		}
	}
}

func TestWritesReg(t *testing.T) {
	in := Instr{Op: OpAdd, Rd: 5, Rs1: 1, Rs2: 2}
	r, ok := in.WritesReg()
	if !ok || r != 5 {
		t.Errorf("add WritesReg = %v, %v", r, ok)
	}
	in = Instr{Op: OpCall}
	r, ok = in.WritesReg()
	if !ok || r != SP {
		t.Errorf("call WritesReg = %v, %v; want sp", r, ok)
	}
	in = Instr{Op: OpStore, Rs1: 1, Rs2: 2}
	if _, ok := in.WritesReg(); ok {
		t.Error("store should not write a register")
	}
}

func TestReadsRegs(t *testing.T) {
	in := Instr{Op: OpStore, Rs1: 3, Rs2: 4}
	got := in.ReadsRegs(nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("store ReadsRegs = %v", got)
	}
	in = Instr{Op: OpRet}
	got = in.ReadsRegs(nil)
	if len(got) != 1 || got[0] != SP {
		t.Errorf("ret ReadsRegs = %v, want [sp]", got)
	}
	in = Instr{Op: OpConst, Rd: 1}
	if got := in.ReadsRegs(nil); len(got) != 0 {
		t.Errorf("const ReadsRegs = %v, want empty", got)
	}
}

func TestMemEffects(t *testing.T) {
	if !(&Instr{Op: OpLoad}).ReadsMem() || !(&Instr{Op: OpRet}).ReadsMem() {
		t.Error("load/ret should read memory")
	}
	if !(&Instr{Op: OpStore}).WritesMem() || !(&Instr{Op: OpCall}).WritesMem() {
		t.Error("store/call should write memory")
	}
	if (&Instr{Op: OpAdd}).ReadsMem() || (&Instr{Op: OpAdd}).WritesMem() {
		t.Error("add should not touch memory")
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Rd: 2, Imm: -5}, "const r2, -5"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpLoad, Rd: 1, Rs1: 15, Imm: 2}, "load r1, sp, 2"},
		{Instr{Op: OpJmp, Target: 12}, "jmp @12"},
		{Instr{Op: OpJmp, Target: 12, Sym: "loop"}, "jmp loop"},
		{Instr{Op: OpBr, Rs1: 4, Target: 3, Target2: 9}, "br r4, @3, @9"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpSpawn, Rs1: 2, Target: 7, Sym: "worker"}, "spawn worker, r2"},
		{Instr{Op: OpInput, Rd: 0, Imm: 1}, "input r0, 1"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func randomInstr(rng *rand.Rand) Instr {
	for {
		op := Op(rng.Intn(int(opCount)))
		in := Instr{
			Op:      op,
			Rd:      Reg(rng.Intn(NumRegs)),
			Rs1:     Reg(rng.Intn(NumRegs)),
			Rs2:     Reg(rng.Intn(NumRegs)),
			Imm:     rng.Int63() - rng.Int63(),
			Target:  rng.Intn(1 << 20),
			Target2: rng.Intn(1 << 20),
		}
		if rng.Intn(2) == 0 {
			in.Sym = "fn" + string(rune('a'+rng.Intn(26)))
		}
		if in.Validate() == nil {
			return in
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64)
		code := make([]Instr, n)
		for i := range code {
			code[i] = randomInstr(rng)
		}
		b, err := MarshalStream(code)
		if err != nil {
			t.Fatalf("trial %d: Marshal: %v", trial, err)
		}
		got, err := UnmarshalStream(b)
		if err != nil {
			t.Fatalf("trial %d: Unmarshal: %v", trial, err)
		}
		if len(got) != len(code) {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(got), len(code))
		}
		for i := range code {
			if got[i] != code[i] {
				t.Fatalf("trial %d: instr %d = %+v, want %+v", trial, i, got[i], code[i])
			}
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := UnmarshalStream([]byte("XXXXXXXX\x00")); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestDecodeTruncated(t *testing.T) {
	code := []Instr{{Op: OpConst, Rd: 1, Imm: 99}, {Op: OpHalt}}
	b, err := MarshalStream(code)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := UnmarshalStream(b[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
}

func TestDecodeRejectsInvalidInstr(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(streamMagic)
	buf.WriteByte(1)                           // count = 1
	buf.Write([]byte{byte(OpConst), 99, 0, 0}) // rd out of range
	buf.WriteByte(0)                           // imm
	buf.WriteByte(0)                           // target
	buf.WriteByte(0)                           // target2
	buf.WriteByte(0)                           // symlen
	if _, err := UnmarshalStream(buf.Bytes()); err == nil {
		t.Error("expected error for invalid register in stream")
	}
}

// Property: String never panics and Validate is deterministic for arbitrary
// instruction bit patterns.
func TestQuickValidateAndString(t *testing.T) {
	f := func(op, rd, rs1, rs2 uint8, imm int64) bool {
		in := Instr{Op: Op(op % 64), Rd: Reg(rd % 32), Rs1: Reg(rs1 % 32), Rs2: Reg(rs2 % 32), Imm: imm}
		e1 := in.Validate()
		e2 := in.Validate()
		_ = in.String()
		return (e1 == nil) == (e2 == nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

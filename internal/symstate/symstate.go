// Package symstate implements the paper's symbolic snapshots (§2.3): an
// image of the program's state in which some locations hold concrete
// values (ultimately rooted in the coredump) and others hold symbolic
// expressions subject to constraints. RES manufactures one snapshot per
// backward step hypothesis; the snapshot for step k over-approximates
// every program state that could have existed k blocks before the failure.
package symstate

import (
	"fmt"
	"sort"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/solver"
	"res/internal/symx"
)

// ThreadState is the symbolic register file and scheduling state of one
// thread within a snapshot.
type ThreadState struct {
	Regs     [isa.NumRegs]*symx.Expr
	PC       int
	State    coredump.ThreadState
	WaitAddr uint32
}

// Clone returns a deep-enough copy (expressions are immutable and shared).
func (t *ThreadState) Clone() *ThreadState {
	nt := *t
	return &nt
}

// Snapshot is one symbolic snapshot. The memory is represented as the
// coredump image plus an overlay of symbolic expressions for the locations
// whose pre-failure contents are not (yet) known concretely.
type Snapshot struct {
	Pool *symx.Pool // shared fresh-variable allocator

	Base     *mem.Image            // the coredump memory (shared, never mutated)
	Mem      map[uint32]*symx.Expr // overlay; absent means Base value
	Threads  map[int]*ThreadState  // live threads (threads unwound past their spawn are absent)
	Locks    map[uint32]int        // held mutexes at this point: addr -> owner
	Heap     []coredump.HeapObject // allocator records at this point
	HeapNext uint32                // bump pointer at this point

	Cons  []solver.Constraint // path constraints accumulated so far
	Depth int                 // backward steps taken from the dump
}

// FromDump builds the base-case snapshot: everything concrete, straight
// from the coredump (the paper's "Spost is initialized with a copy of C").
// heapBase is the layout's first heap address, used to reconstruct the
// bump-allocator pointer from the dump's allocation records.
func FromDump(d *coredump.Dump, heapBase uint32, pool *symx.Pool) *Snapshot {
	s := &Snapshot{
		Pool:    pool,
		Base:    d.Mem,
		Mem:     make(map[uint32]*symx.Expr),
		Threads: make(map[int]*ThreadState),
		Locks:   make(map[uint32]int, len(d.Locks)),
		Heap:    append([]coredump.HeapObject(nil), d.Heap...),
	}
	for _, t := range d.Threads {
		ts := &ThreadState{PC: t.PC, State: t.State, WaitAddr: t.WaitAddr}
		for r := 0; r < isa.NumRegs; r++ {
			ts.Regs[r] = symx.Const(t.Regs[r])
		}
		s.Threads[t.ID] = ts
	}
	for a, o := range d.Locks {
		s.Locks[a] = o
	}
	s.HeapNext = heapBase
	for _, h := range d.Heap {
		if h.Base+h.Size > s.HeapNext {
			s.HeapNext = h.Base + h.Size
		}
	}
	return s
}

// Clone returns an independent snapshot sharing the base image and the
// (immutable) expressions.
func (s *Snapshot) Clone() *Snapshot {
	ns := &Snapshot{
		Pool:     s.Pool,
		Base:     s.Base,
		Mem:      make(map[uint32]*symx.Expr, len(s.Mem)),
		Threads:  make(map[int]*ThreadState, len(s.Threads)),
		Locks:    make(map[uint32]int, len(s.Locks)),
		Heap:     append([]coredump.HeapObject(nil), s.Heap...),
		HeapNext: s.HeapNext,
		Cons:     append([]solver.Constraint(nil), s.Cons...),
		Depth:    s.Depth,
	}
	for a, e := range s.Mem {
		ns.Mem[a] = e
	}
	for id, t := range s.Threads {
		ns.Threads[id] = t.Clone()
	}
	for a, o := range s.Locks {
		ns.Locks[a] = o
	}
	return ns
}

// MemAt returns the (symbolic) value of memory word a.
func (s *Snapshot) MemAt(a uint32) *symx.Expr {
	if e, ok := s.Mem[a]; ok {
		return e
	}
	if !s.Base.InRange(a) {
		return symx.Const(0)
	}
	return symx.Const(s.Base.Load(a))
}

// SetMem overlays a symbolic value at address a.
func (s *Snapshot) SetMem(a uint32, e *symx.Expr) { s.Mem[a] = e }

// Reg returns the symbolic value of a register of thread tid.
func (s *Snapshot) Reg(tid int, r isa.Reg) (*symx.Expr, error) {
	t, ok := s.Threads[tid]
	if !ok {
		return nil, fmt.Errorf("symstate: no thread %d in snapshot", tid)
	}
	return t.Regs[r], nil
}

// Thread returns the thread state, or nil when the thread does not exist
// at this point of the (backward) reconstruction.
func (s *Snapshot) Thread(tid int) *ThreadState { return s.Threads[tid] }

// ThreadIDs returns the live thread ids in ascending order.
func (s *Snapshot) ThreadIDs() []int {
	out := make([]int, 0, len(s.Threads))
	for id := range s.Threads {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// MaxThreadID returns the highest live thread id, or -1.
func (s *Snapshot) MaxThreadID() int {
	max := -1
	for id := range s.Threads {
		if id > max {
			max = id
		}
	}
	return max
}

// AddCons appends path constraints.
func (s *Snapshot) AddCons(cs ...solver.Constraint) { s.Cons = append(s.Cons, cs...) }

// Check runs the solver over the snapshot's constraints.
func (s *Snapshot) Check(opt solver.Options) solver.Result {
	return solver.Check(s.Cons, opt)
}

// ConcretizeMem materializes the snapshot's memory under a model: the base
// image with every overlaid expression evaluated. Expressions that fail to
// evaluate (division by zero under the model) resolve to zero — they are
// unconstrained by definition or the model would not have validated.
func (s *Snapshot) ConcretizeMem(m symx.Model) *mem.Image {
	img := s.Base.Clone()
	for a, e := range s.Mem {
		v, ok := e.Eval(m)
		if !ok {
			v = 0
		}
		if img.InRange(a) {
			img.Store(a, v)
		}
	}
	return img
}

// ConcretizeRegs materializes thread tid's register file under a model.
func (s *Snapshot) ConcretizeRegs(tid int, m symx.Model) ([isa.NumRegs]int64, error) {
	var out [isa.NumRegs]int64
	t, ok := s.Threads[tid]
	if !ok {
		return out, fmt.Errorf("symstate: no thread %d", tid)
	}
	for r := 0; r < isa.NumRegs; r++ {
		v, ok := t.Regs[r].Eval(m)
		if !ok {
			v = 0
		}
		out[r] = v
	}
	return out, nil
}

// SymbolicFootprint returns the addresses currently overlaid with
// expressions that still mention variables (the "currently unknown" part
// of the snapshot — useful for reporting and tests).
func (s *Snapshot) SymbolicFootprint() []uint32 {
	var out []uint32
	for a, e := range s.Mem {
		if e.HasVars() {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the snapshot.
func (s *Snapshot) String() string {
	return fmt.Sprintf("snapshot{depth=%d threads=%v overlay=%d cons=%d}",
		s.Depth, s.ThreadIDs(), len(s.Mem), len(s.Cons))
}

// Package symstate implements the paper's symbolic snapshots (§2.3): an
// image of the program's state in which some locations hold concrete
// values (ultimately rooted in the coredump) and others hold symbolic
// expressions subject to constraints. RES manufactures one snapshot per
// backward step hypothesis; the snapshot for step k over-approximates
// every program state that could have existed k blocks before the failure.
//
// Snapshots are copy-on-write: Clone is O(1) and returns a child layered
// on its parent, holding only the deltas (memory overlay writes, thread
// mutations, lock-table changes) the child itself makes, plus a
// persistent-append constraint chain. Reads walk the layer chain, whose
// length is the search depth — so a depth-d node costs O(its own step) to
// create, not O(accumulated state). Flatten materializes the full view
// for consumers that want a self-contained snapshot.
//
// Each snapshot also maintains an incremental structural fingerprint
// (built on symx's cached expression hashes) identifying its
// (threads, overlay, constraints, locks, heap) content, which the search
// uses to deduplicate equivalent frontier nodes, and can carry a
// solver.Session holding the propagated solver state over its constraint
// chain, which makes per-step satisfiability checks incremental.
package symstate

import (
	"fmt"
	"sort"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/solver"
	"res/internal/symx"
)

// ThreadState is the symbolic register file and scheduling state of one
// thread within a snapshot.
type ThreadState struct {
	Regs     [isa.NumRegs]*symx.Expr
	PC       int
	State    coredump.ThreadState
	WaitAddr uint32
}

// Clone returns a deep-enough copy (expressions are immutable and shared).
func (t *ThreadState) Clone() *ThreadState {
	nt := *t
	return &nt
}

// hash mixes the thread's full state into a structural hash.
func (t *ThreadState) hash(tid int) uint64 {
	h := mix(0x6a09e667f3bcc908, uint64(tid))
	h = mix(h, uint64(t.PC))
	h = mix(h, uint64(t.State))
	h = mix(h, uint64(t.WaitAddr))
	for r := 0; r < isa.NumRegs; r++ {
		h = mix(h, t.Regs[r].Hash())
	}
	return h
}

// mix is symx's hash mixer, so snapshot fingerprints compose from the
// same primitive as the expression hashes they build on.
func mix(h, v uint64) uint64 { return symx.MixHash(h, v) }

// Snapshot is one symbolic snapshot. The memory is represented as the
// coredump image plus an overlay of symbolic expressions for the locations
// whose pre-failure contents are not (yet) known concretely. A cloned
// snapshot shares its parent's layers and records only its own deltas;
// mutate threads only through MutableThread so the copy-on-write
// discipline holds.
type Snapshot struct {
	Pool *symx.Pool // shared fresh-variable allocator

	Base *mem.Image // the coredump memory (shared, never mutated)

	// parent is the layer this snapshot copies on write; nil at the root.
	parent *Snapshot

	// Per-layer deltas. At the root these hold the full state.
	mem     map[uint32]*symx.Expr // overlay writes made by this layer
	threads map[int]*ThreadState  // thread mutations; nil entry = deleted
	locks   map[uint32]int        // lock-table writes made by this layer
	lockDel map[uint32]bool       // lock-table deletions made by this layer

	// cons holds the constraints appended by this layer; the full set is
	// the chain's concatenation, frozen per layer by parentConsLen.
	cons          []solver.Constraint
	parentConsLen int // parent's visible cons length at fork time
	consLen       int // total visible constraints (chain-cumulative)

	// Sess, when non-nil, is the propagated solver state over the first
	// sessLen constraints of the chain. Check keeps it in step; callers
	// that append constraints directly just call Check to re-sync.
	Sess    *solver.Session
	sessLen int

	Heap     []coredump.HeapObject // allocator records at this point (replaced wholesale, never mutated in place)
	HeapNext uint32                // bump pointer at this point

	Depth int // backward steps taken from the dump

	// Incrementally maintained fingerprint components.
	memHash  uint64 // XOR over (addr, expr-hash) of the effective overlay
	consHash uint64 // order-sensitive hash of the constraint chain
}

// FromDump builds the base-case snapshot: everything concrete, straight
// from the coredump (the paper's "Spost is initialized with a copy of C").
// heapBase is the layout's first heap address, used to reconstruct the
// bump-allocator pointer from the dump's allocation records.
func FromDump(d *coredump.Dump, heapBase uint32, pool *symx.Pool) *Snapshot {
	s := &Snapshot{
		Pool:    pool,
		Base:    d.Mem,
		mem:     make(map[uint32]*symx.Expr),
		threads: make(map[int]*ThreadState),
		locks:   make(map[uint32]int, len(d.Locks)),
		Heap:    append([]coredump.HeapObject(nil), d.Heap...),
	}
	for _, t := range d.Threads {
		ts := &ThreadState{PC: t.PC, State: t.State, WaitAddr: t.WaitAddr}
		for r := 0; r < isa.NumRegs; r++ {
			ts.Regs[r] = symx.Const(t.Regs[r])
		}
		s.threads[t.ID] = ts
	}
	for a, o := range d.Locks {
		s.locks[a] = o
	}
	s.HeapNext = heapBase
	for _, h := range d.Heap {
		if h.Base+h.Size > s.HeapNext {
			s.HeapNext = h.Base + h.Size
		}
	}
	return s
}

// Clone returns an independent snapshot layered on s: an O(1) copy-on-write
// fork sharing the parent's state and the (immutable) expressions. The
// child sees every constraint s holds now; constraints appended to s later
// are invisible to the child.
func (s *Snapshot) Clone() *Snapshot {
	return &Snapshot{
		Pool:          s.Pool,
		Base:          s.Base,
		parent:        s,
		Heap:          s.Heap,
		HeapNext:      s.HeapNext,
		parentConsLen: len(s.cons),
		consLen:       s.consLen,
		Sess:          s.Sess,
		sessLen:       s.sessLen,
		Depth:         s.Depth,
		memHash:       s.memHash,
		consHash:      s.consHash,
	}
}

// Flatten materializes the full view as a single root-form snapshot with
// no parent chain: the escape hatch for consumers that want O(1) reads or
// a snapshot that outlives its ancestry. The flattened snapshot is
// semantically identical (same fingerprint, same constraint order).
func (s *Snapshot) Flatten() *Snapshot {
	ns := &Snapshot{
		Pool:     s.Pool,
		Base:     s.Base,
		mem:      make(map[uint32]*symx.Expr),
		threads:  make(map[int]*ThreadState),
		locks:    make(map[uint32]int),
		cons:     s.Cons(),
		consLen:  s.consLen,
		Sess:     s.Sess,
		sessLen:  s.sessLen,
		Heap:     append([]coredump.HeapObject(nil), s.Heap...),
		HeapNext: s.HeapNext,
		Depth:    s.Depth,
		memHash:  s.memHash,
		consHash: s.consHash,
	}
	s.ForEachMem(func(a uint32, e *symx.Expr) { ns.mem[a] = e })
	for _, tid := range s.ThreadIDs() {
		ns.threads[tid] = s.Thread(tid).Clone()
	}
	s.ForEachLock(func(a uint32, owner int) { ns.locks[a] = owner })
	return ns
}

// memLookup finds the effective overlay entry for a, walking the chain.
func (s *Snapshot) memLookup(a uint32) (*symx.Expr, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if e, ok := cur.mem[a]; ok {
			return e, true
		}
	}
	return nil, false
}

// MemAt returns the (symbolic) value of memory word a.
func (s *Snapshot) MemAt(a uint32) *symx.Expr {
	if e, ok := s.memLookup(a); ok {
		return e
	}
	if !s.Base.InRange(a) {
		return symx.Const(0)
	}
	return symx.Const(s.Base.Load(a))
}

// SetMem overlays a symbolic value at address a (in this layer only).
func (s *Snapshot) SetMem(a uint32, e *symx.Expr) {
	if old, ok := s.memLookup(a); ok {
		s.memHash ^= mix(uint64(a), old.Hash())
	}
	s.memHash ^= mix(uint64(a), e.Hash())
	if s.mem == nil {
		s.mem = make(map[uint32]*symx.Expr)
	}
	s.mem[a] = e
}

// ForEachMem visits the effective memory overlay (youngest layer wins),
// in ascending address order.
func (s *Snapshot) ForEachMem(f func(a uint32, e *symx.Expr)) {
	seen := make(map[uint32]*symx.Expr)
	for cur := s; cur != nil; cur = cur.parent {
		for a, e := range cur.mem {
			if _, ok := seen[a]; !ok {
				seen[a] = e
			}
		}
	}
	addrs := make([]uint32, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		f(a, seen[a])
	}
}

// OverlayLen returns the number of effective overlay entries.
func (s *Snapshot) OverlayLen() int {
	n := 0
	s.ForEachMem(func(uint32, *symx.Expr) { n++ })
	return n
}

// Reg returns the symbolic value of a register of thread tid.
func (s *Snapshot) Reg(tid int, r isa.Reg) (*symx.Expr, error) {
	t := s.Thread(tid)
	if t == nil {
		return nil, fmt.Errorf("symstate: no thread %d in snapshot", tid)
	}
	return t.Regs[r], nil
}

// Thread returns the thread state, or nil when the thread does not exist
// at this point of the (backward) reconstruction. The returned state is
// shared with ancestor snapshots — use MutableThread before mutating.
func (s *Snapshot) Thread(tid int) *ThreadState {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.threads[tid]; ok {
			return t // nil entry = deleted at this layer
		}
	}
	return nil
}

// MutableThread returns a thread state owned by this layer, copying the
// ancestor's state in on first use. It returns nil for a thread that does
// not exist.
func (s *Snapshot) MutableThread(tid int) *ThreadState {
	if t, ok := s.threads[tid]; ok {
		return t
	}
	t := s.Thread(tid)
	if t == nil {
		return nil
	}
	nt := t.Clone()
	if s.threads == nil {
		s.threads = make(map[int]*ThreadState)
	}
	s.threads[tid] = nt
	return nt
}

// SetThread installs a thread state in this layer.
func (s *Snapshot) SetThread(tid int, t *ThreadState) {
	if s.threads == nil {
		s.threads = make(map[int]*ThreadState)
	}
	s.threads[tid] = t
}

// DeleteThread removes tid from this layer onward (a spawn unwound).
func (s *Snapshot) DeleteThread(tid int) {
	if s.threads == nil {
		s.threads = make(map[int]*ThreadState)
	}
	s.threads[tid] = nil
}

// ThreadIDs returns the live thread ids in ascending order.
func (s *Snapshot) ThreadIDs() []int {
	seen := make(map[int]bool)
	var out []int
	for cur := s; cur != nil; cur = cur.parent {
		for id, t := range cur.threads {
			if seen[id] {
				continue
			}
			seen[id] = true
			if t != nil {
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// MaxThreadID returns the highest live thread id, or -1.
func (s *Snapshot) MaxThreadID() int {
	ids := s.ThreadIDs() // ascending
	if len(ids) == 0 {
		return -1
	}
	return ids[len(ids)-1]
}

// LockOwner reports whether mutex a is held at this point, and by whom.
func (s *Snapshot) LockOwner(a uint32) (int, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.lockDel[a] {
			return 0, false
		}
		if o, ok := cur.locks[a]; ok {
			return o, true
		}
	}
	return 0, false
}

// SetLock records mutex a held by owner (in this layer).
func (s *Snapshot) SetLock(a uint32, owner int) {
	if s.locks == nil {
		s.locks = make(map[uint32]int)
	}
	s.locks[a] = owner
	delete(s.lockDel, a)
}

// DeleteLock records mutex a free (in this layer).
func (s *Snapshot) DeleteLock(a uint32) {
	delete(s.locks, a)
	if _, held := s.LockOwner(a); held {
		if s.lockDel == nil {
			s.lockDel = make(map[uint32]bool)
		}
		s.lockDel[a] = true
	}
}

// ForEachLock visits the effective lock table in ascending address order.
func (s *Snapshot) ForEachLock(f func(a uint32, owner int)) {
	type entry struct {
		owner int
		held  bool
	}
	seen := make(map[uint32]entry)
	for cur := s; cur != nil; cur = cur.parent {
		for a := range cur.lockDel {
			if _, ok := seen[a]; !ok {
				seen[a] = entry{}
			}
		}
		for a, o := range cur.locks {
			if _, ok := seen[a]; !ok {
				seen[a] = entry{owner: o, held: true}
			}
		}
	}
	addrs := make([]uint32, 0, len(seen))
	for a, e := range seen {
		if e.held {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		f(a, seen[a].owner)
	}
}

// NumLocks returns the number of held mutexes.
func (s *Snapshot) NumLocks() int {
	n := 0
	s.ForEachLock(func(uint32, int) { n++ })
	return n
}

// AddCons appends path constraints to this layer.
func (s *Snapshot) AddCons(cs ...solver.Constraint) {
	for _, c := range cs {
		s.consHash = mix(mix(s.consHash, c.L.Hash()^uint64(c.Rel)<<56), c.R.Hash())
	}
	s.cons = append(s.cons, cs...)
	s.consLen += len(cs)
}

// Cons flattens the constraint chain, oldest first. The result is freshly
// allocated; callers may append to it.
func (s *Snapshot) Cons() []solver.Constraint {
	out := make([]solver.Constraint, s.consLen)
	i := s.consLen
	visible := len(s.cons)
	for cur := s; cur != nil; {
		i -= visible
		copy(out[i:], cur.cons[:visible])
		visible = cur.parentConsLen
		cur = cur.parent
	}
	return out
}

// ConsLen returns the number of constraints in the chain.
func (s *Snapshot) ConsLen() int { return s.consLen }

// consDelta returns the constraints appended since the session last saw
// the chain. Sessions are attached at the chain head, so the delta
// normally lives in this layer's own slice; a session inherited from
// below a fork point falls back to the flattened tail.
func (s *Snapshot) consDelta() []solver.Constraint {
	n := s.consLen - s.sessLen
	if n <= 0 {
		return nil
	}
	if n <= len(s.cons) {
		return s.cons[len(s.cons)-n:]
	}
	all := s.Cons()
	return all[len(all)-n:]
}

// Check decides the snapshot's constraint set. With a session attached it
// solves incrementally — only constraints appended since the last Check
// are propagated — and advances the session; without one it solves the
// flattened chain from scratch.
func (s *Snapshot) Check(opt solver.Options) solver.Result {
	if s.Sess == nil {
		return solver.Check(s.Cons(), opt)
	}
	res, child := s.Sess.Extend(s.consDelta(), opt)
	s.Sess, s.sessLen = child, s.consLen
	return res
}

// CheckWith decides Cons() ∧ extra without recording extra on the
// snapshot, incrementally when a session is attached.
func (s *Snapshot) CheckWith(opt solver.Options, extra []solver.Constraint) solver.Result {
	if s.Sess == nil {
		return solver.Check(append(s.Cons(), extra...), opt)
	}
	delta := s.consDelta()
	if len(delta) > 0 {
		extra = append(append([]solver.Constraint(nil), delta...), extra...)
	}
	return s.Sess.CheckWith(extra, opt)
}

// AttachSession seeds the snapshot with the propagated solver state over
// its current constraint chain. The search root calls this once; Check
// keeps descendants in step from there.
func (s *Snapshot) AttachSession(opt solver.Options) {
	sess := solver.NewSession()
	if s.consLen > 0 {
		_, sess = sess.Extend(s.Cons(), opt)
	}
	s.Sess, s.sessLen = sess, s.consLen
}

// Fingerprint returns a structural hash of the snapshot's content:
// per-thread pc/state/registers, the effective memory overlay, the
// constraint chain, the lock table, and the allocator state. Equal
// snapshots always collide; distinct ones collide with probability
// ~2^-64. The search uses it to deduplicate equivalent frontier nodes.
func (s *Snapshot) Fingerprint() uint64 {
	h := mix(0xbb67ae8584caa73b, uint64(s.Depth))
	h = mix(h, s.memHash)
	h = mix(h, s.consHash)
	h = mix(h, uint64(s.HeapNext))
	for _, tid := range s.ThreadIDs() {
		h = mix(h, s.Thread(tid).hash(tid))
	}
	s.ForEachLock(func(a uint32, owner int) {
		h = mix(mix(h, uint64(a)), uint64(owner))
	})
	for _, obj := range s.Heap {
		h = mix(h, uint64(obj.Base))
		h = mix(h, uint64(obj.Size))
		h = mix(h, uint64(obj.AllocPC))
		if obj.Freed {
			h = mix(h, uint64(obj.FreePC)+1)
		}
	}
	return h
}

// ConcretizeMem materializes the snapshot's memory under a model: the base
// image with every overlaid expression evaluated. Expressions that fail to
// evaluate (division by zero under the model) resolve to zero — they are
// unconstrained by definition or the model would not have validated.
func (s *Snapshot) ConcretizeMem(m symx.Model) *mem.Image {
	img := s.Base.Clone()
	s.ForEachMem(func(a uint32, e *symx.Expr) {
		v, ok := e.Eval(m)
		if !ok {
			v = 0
		}
		if img.InRange(a) {
			img.Store(a, v)
		}
	})
	return img
}

// ConcretizeRegs materializes thread tid's register file under a model.
func (s *Snapshot) ConcretizeRegs(tid int, m symx.Model) ([isa.NumRegs]int64, error) {
	var out [isa.NumRegs]int64
	t := s.Thread(tid)
	if t == nil {
		return out, fmt.Errorf("symstate: no thread %d", tid)
	}
	for r := 0; r < isa.NumRegs; r++ {
		v, ok := t.Regs[r].Eval(m)
		if !ok {
			v = 0
		}
		out[r] = v
	}
	return out, nil
}

// SymbolicFootprint returns the addresses currently overlaid with
// expressions that still mention variables (the "currently unknown" part
// of the snapshot — useful for reporting and tests).
func (s *Snapshot) SymbolicFootprint() []uint32 {
	var out []uint32
	s.ForEachMem(func(a uint32, e *symx.Expr) {
		if e.HasVars() {
			out = append(out, a)
		}
	})
	return out
}

// String summarizes the snapshot.
func (s *Snapshot) String() string {
	return fmt.Sprintf("snapshot{depth=%d threads=%v overlay=%d cons=%d}",
		s.Depth, s.ThreadIDs(), s.OverlayLen(), s.consLen)
}

package symstate

import (
	"testing"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/solver"
	"res/internal/symx"
)

func sampleDump() *coredump.Dump {
	d := &coredump.Dump{
		Mem:   mem.NewImage(128),
		Locks: map[uint32]int{50: 0},
		Heap:  []coredump.HeapObject{{Base: 21, Size: 4, FreePC: -1}},
	}
	d.Mem.Store(30, 7)
	th := coredump.Thread{ID: 0, PC: 5, State: coredump.ThreadRunnable}
	th.Regs[1] = 42
	d.Threads = append(d.Threads, th)
	d.Threads = append(d.Threads, coredump.Thread{ID: 1, PC: 9, State: coredump.ThreadBlocked, WaitAddr: 50})
	return d
}

func TestFromDump(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	if got := s.MemAt(30); !s.MemAt(30).Equal(symx.Const(7)) {
		t.Errorf("MemAt(30) = %v", got)
	}
	r, err := s.Reg(0, 1)
	if err != nil || !r.Equal(symx.Const(42)) {
		t.Errorf("Reg = %v, %v", r, err)
	}
	if s.Thread(1).State != coredump.ThreadBlocked {
		t.Error("thread state lost")
	}
	if o, held := s.LockOwner(50); !held || o != 0 {
		t.Error("lock table lost")
	}
	// HeapNext derived from the top object: 21+4 = 25.
	if s.HeapNext != 25 {
		t.Errorf("HeapNext = %d", s.HeapNext)
	}
	ids := s.ThreadIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ids = %v", ids)
	}
	if s.MaxThreadID() != 1 {
		t.Errorf("max tid = %d", s.MaxThreadID())
	}
}

func TestCloneIsolation(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	c := s.Clone()
	v := pool.FreshExpr("x")
	c.SetMem(30, v)
	c.MutableThread(0).Regs[1] = symx.Const(0)
	c.SetLock(51, 1)
	c.AddCons(solver.Eq(v, symx.Const(1)))
	if !s.MemAt(30).Equal(symx.Const(7)) {
		t.Error("clone shares memory overlay")
	}
	if !s.Thread(0).Regs[1].Equal(symx.Const(42)) {
		t.Error("clone shares registers")
	}
	if s.NumLocks() != 1 || s.ConsLen() != 0 {
		t.Error("clone shares locks/constraints")
	}
	// And the child sees its own layer over the parent's.
	if !c.MemAt(30).Equal(v) || !c.Thread(0).Regs[1].Equal(symx.Const(0)) {
		t.Error("child lost its delta")
	}
	if o, held := c.LockOwner(50); !held || o != 0 {
		t.Error("child lost the parent's lock table")
	}
	if c.NumLocks() != 2 || c.ConsLen() != 1 {
		t.Errorf("child view: locks=%d cons=%d", c.NumLocks(), c.ConsLen())
	}
}

func TestCOWLayering(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	s.AddCons(solver.Ne(symx.VarExpr(pool.Fresh("a")), symx.Const(0)))

	// Child layered on the parent: deletions tombstone, constraints chain.
	c := s.Clone()
	c.DeleteThread(1)
	c.DeleteLock(50)
	c.AddCons(solver.Eq(symx.VarExpr(pool.Fresh("b")), symx.Const(2)))
	if ids := c.ThreadIDs(); len(ids) != 1 || ids[0] != 0 {
		t.Errorf("child threads = %v", ids)
	}
	if _, held := c.LockOwner(50); held {
		t.Error("tombstoned lock still held")
	}
	if got := len(c.Cons()); got != 2 {
		t.Errorf("chained cons = %d, want 2", got)
	}
	// Parent unaffected.
	if ids := s.ThreadIDs(); len(ids) != 2 {
		t.Errorf("parent threads = %v", ids)
	}
	if _, held := s.LockOwner(50); !held {
		t.Error("parent lost its lock")
	}

	// Constraints appended to the parent AFTER the fork stay invisible to
	// the child (persistent-append freeze).
	s.AddCons(solver.Eq(symx.VarExpr(pool.Fresh("c")), symx.Const(3)))
	if got := len(c.Cons()); got != 2 {
		t.Errorf("child sees parent's post-fork cons: %d", got)
	}

	// A grandchild re-adding the deleted lock shadows the tombstone.
	g := c.Clone()
	g.SetLock(50, 1)
	if o, held := g.LockOwner(50); !held || o != 1 {
		t.Error("grandchild lock not visible")
	}
	if _, held := c.LockOwner(50); held {
		t.Error("grandchild write leaked into child")
	}
}

func TestFlattenEquivalence(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	c := s.Clone()
	c.SetMem(40, pool.FreshExpr("x"))
	c.MutableThread(0).PC = 77
	c.DeleteThread(1)
	c.AddCons(solver.Eq(symx.Const(1), symx.Const(1)))
	f := c.Flatten()
	if f.Fingerprint() != c.Fingerprint() {
		t.Error("flattened fingerprint differs")
	}
	if !f.MemAt(40).Equal(c.MemAt(40)) || f.Thread(0).PC != 77 || f.Thread(1) != nil {
		t.Error("flattened view differs")
	}
	if len(f.Cons()) != len(c.Cons()) {
		t.Error("flattened cons differ")
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	a, b := s.Clone(), s.Clone()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical snapshots fingerprint differently")
	}
	b.SetMem(33, symx.Const(9))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("memory delta not reflected in fingerprint")
	}
	a.SetMem(33, symx.Const(9))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal deltas fingerprint differently")
	}
	a.AddCons(solver.Eq(symx.Const(0), symx.Const(0)))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("constraint delta not reflected in fingerprint")
	}
}

func TestSessionIncrementalCheck(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	x := pool.Fresh("x")
	s.AddCons(solver.Eq(symx.VarExpr(x), symx.Const(5)))
	s.AttachSession(solver.Options{})
	c := s.Clone()
	y := pool.Fresh("y")
	c.AddCons(solver.Eq(symx.VarExpr(y), symx.Binary(symx.OpAdd, symx.VarExpr(x), symx.Const(1))))
	res := c.Check(solver.Options{})
	if res.Verdict != solver.Sat || res.Model[x] != 5 || res.Model[y] != 6 {
		t.Errorf("incremental check = %+v", res)
	}
	// The parent's session is untouched and the child's can extend again.
	if res := s.CheckWith(solver.Options{}, nil); res.Verdict != solver.Sat {
		t.Errorf("parent check after child extend = %v", res.Verdict)
	}
	c.AddCons(solver.Eq(symx.VarExpr(y), symx.Const(7)))
	if res := c.Check(solver.Options{}); res.Verdict != solver.Unsat {
		t.Errorf("contradiction after extend = %v", res.Verdict)
	}
}

func TestConcretize(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	x := pool.Fresh("x")
	s.SetMem(31, symx.VarExpr(x))
	s.MutableThread(0).Regs[2] = symx.Binary(symx.OpAdd, symx.VarExpr(x), symx.Const(1))
	m := symx.Model{x: 10}
	img := s.ConcretizeMem(m)
	if img.Load(31) != 10 || img.Load(30) != 7 {
		t.Errorf("concretized mem: %d, %d", img.Load(31), img.Load(30))
	}
	regs, err := s.ConcretizeRegs(0, m)
	if err != nil || regs[2] != 11 || regs[1] != 42 {
		t.Errorf("regs = %v, %v", regs, err)
	}
	if _, err := s.ConcretizeRegs(9, m); err == nil {
		t.Error("unknown thread accepted")
	}
}

func TestSymbolicFootprint(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	s.SetMem(40, pool.FreshExpr("a"))
	s.SetMem(35, pool.FreshExpr("b"))
	s.SetMem(36, symx.Const(3)) // concrete overlay: not symbolic
	fp := s.SymbolicFootprint()
	if len(fp) != 2 || fp[0] != 35 || fp[1] != 40 {
		t.Errorf("footprint = %v", fp)
	}
}

func TestCheckIntegration(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	x := pool.Fresh("x")
	s.AddCons(solver.Eq(symx.VarExpr(x), symx.Const(5)))
	res := s.Check(solver.Options{})
	if res.Verdict != solver.Sat || res.Model[x] != 5 {
		t.Errorf("check = %+v", res)
	}
	s.AddCons(solver.Eq(symx.VarExpr(x), symx.Const(6)))
	if res := s.Check(solver.Options{}); res.Verdict != solver.Unsat {
		t.Errorf("contradiction = %v", res.Verdict)
	}
}

func TestRegErrors(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	if _, err := s.Reg(7, isa.SP); err == nil {
		t.Error("unknown thread register read accepted")
	}
	if s.Thread(7) != nil {
		t.Error("Thread(7) should be nil")
	}
}

func TestMemAtOutOfRange(t *testing.T) {
	pool := symx.NewPool()
	s := FromDump(sampleDump(), 20, pool)
	if got := s.MemAt(100000); !got.Equal(symx.Const(0)) {
		t.Errorf("out-of-range MemAt = %v", got)
	}
}

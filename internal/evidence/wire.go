package evidence

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"res/internal/core"
)

// The wire form is a canonical container: magic, source count, then each
// source as (kind string, payload length, payload). Every numeric field
// is a varint, payloads are themselves canonical (decode validates the
// invariants the encoders maintain — sorted indexes, zeroed padding
// bits), and Decode rejects trailing bytes at both the container and the
// payload level, so decode∘encode is the identity on canonical bytes and
// encode∘decode is a fixed point on anything that decodes at all. That
// fixed point is what lets the ingestion service address evidence by
// content: two byte streams describing the same evidence canonicalize to
// the same fingerprint.
const wireMagic = "RESEVID1"

// Decode limits: a malicious or corrupt stream must fail fast, not
// allocate unboundedly. maxSources mirrors core.MaxPruners — the engine
// tracks one consume bit per pruner in a 64-bit mask, so larger sets
// must never reach it.
const (
	maxSources = core.MaxPruners
	maxRecords = 1 << 20
	maxPayload = 1 << 24
)

type encoder struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

type decoder struct {
	r   *bytes.Reader
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("evidence: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("evidence: %w", err)
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("evidence: %w", err)
	}
	return v
}

func (d *decoder) str(max uint64) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > max {
		d.fail("string too long (%d)", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = fmt.Errorf("evidence: %w", err)
		return ""
	}
	return string(b)
}

// Encode renders the set in its canonical wire form.
func (s Set) Encode() []byte {
	e := &encoder{}
	e.buf.WriteString(wireMagic)
	e.uvarint(uint64(len(s)))
	for _, src := range s {
		e.str(src.Kind())
		payload := src.encodePayload()
		e.uvarint(uint64(len(payload)))
		e.buf.Write(payload)
	}
	return e.buf.Bytes()
}

// Decode parses a wire-form evidence set. nil/empty input decodes to a
// nil set (no evidence); anything else must carry the magic and be fully
// consumed. Unknown source kinds are an error: silently dropping
// evidence would let a newer producer think an older analyzer used hints
// it never understood.
func Decode(b []byte) (Set, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) < len(wireMagic) || string(b[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("evidence: bad magic")
	}
	d := &decoder{r: bytes.NewReader(b[len(wireMagic):])}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > maxSources {
		return nil, fmt.Errorf("evidence: unreasonable source count %d", n)
	}
	set := make(Set, 0, n)
	for i := uint64(0); i < n; i++ {
		kind := d.str(256)
		plen := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if plen > maxPayload {
			return nil, fmt.Errorf("evidence: payload too long (%d)", plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(d.r, payload); err != nil {
			return nil, fmt.Errorf("evidence: %w", err)
		}
		src, err := decodeSource(kind, payload)
		if err != nil {
			return nil, err
		}
		set = append(set, src)
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("evidence: %d trailing bytes", d.r.Len())
	}
	return set, nil
}

// decodeSource dispatches one payload to its kind's decoder. Every
// decoder must consume the payload exactly and enforce its canonical
// invariants.
func decodeSource(kind string, payload []byte) (Source, error) {
	d := &decoder{r: bytes.NewReader(payload)}
	var src Source
	switch kind {
	case kindLBR:
		src = decodeLBR(d)
	case kindOutputLog:
		src = decodeOutputLog(d)
	case kindEventLog:
		src = decodeEventLog(d)
	case kindBranchTrace:
		src = decodeBranchTrace(d)
	case kindMemProbe:
		src = decodeMemProbe(d)
	default:
		return nil, fmt.Errorf("evidence: unknown source kind %q", kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("evidence: %s: %d trailing payload bytes", kind, d.r.Len())
	}
	return src, nil
}

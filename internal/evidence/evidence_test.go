package evidence_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"res"
	"res/internal/breadcrumb"
	"res/internal/core"
	"res/internal/evidence"
	"res/internal/workload"
)

// fullSet builds one of every source kind with non-trivial payloads.
func fullSet() evidence.Set {
	return evidence.Set{
		evidence.LBR{Mode: breadcrumb.SkipConditional},
		evidence.OutputLog{},
		evidence.EventLog{Records: []evidence.EventRec{
			{Index: 3, Tid: 0, Block: 2},
			{Index: 9, Tid: 1, Block: 5},
			{Index: 12, Tid: 0, Block: 7},
		}},
		evidence.BranchTrace{Bits: []bool{true, false, false, true, true, false, true, false, true}},
		evidence.MemProbe{Probes: []evidence.Probe{
			{Index: 4, Addr: 16, Value: -7},
			{Index: 4, Addr: 17, Value: 0},
			{Index: 11, Addr: 16, Value: 9},
		}},
	}
}

func TestWireRoundTrip(t *testing.T) {
	set := fullSet()
	enc := set.Encode()
	dec, err := evidence.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Encode(); !bytes.Equal(got, enc) {
		t.Fatalf("canonical form is not a fixed point:\nfirst:  %x\nsecond: %x", enc, got)
	}
	if dec.Fingerprint() != set.Fingerprint() {
		t.Fatal("fingerprint changed across round trip")
	}
	wantKinds := []string{"lbr", "output-log", "event-log", "branch-trace", "mem-probe"}
	gotKinds := dec.Kinds()
	if len(gotKinds) != len(wantKinds) {
		t.Fatalf("kinds = %v", gotKinds)
	}
	for i, k := range wantKinds {
		if gotKinds[i] != k {
			t.Fatalf("kinds = %v, want %v", gotKinds, wantKinds)
		}
	}
}

func TestWireEmptyAndErrors(t *testing.T) {
	if set, err := evidence.Decode(nil); err != nil || set != nil {
		t.Fatalf("Decode(nil) = %v, %v", set, err)
	}
	if evidence.Set(nil).Fingerprint() != "" {
		t.Fatal("empty set must fingerprint to the empty string")
	}
	// A zero-source set fingerprints empty too.
	if (evidence.Set{}).Fingerprint() != "" {
		t.Fatal("zero-source set must fingerprint empty")
	}
	bad := [][]byte{
		[]byte("garbage"),
		[]byte("RESEVID1"),                                 // truncated count
		append(fullSet().Encode(), 0),                      // trailing container bytes
		[]byte("RESEVID1\x01\x03zzz\x00"),                  // unknown kind
		[]byte("RESEVID1\x01\x03lbr\x01\x05"),              // bad LBR mode
		[]byte("RESEVID1\x01\x03lbr\x02\x00\x00"),          // trailing payload bytes
		[]byte("RESEVID1\x01\x0cbranch-trace\x02\x01\xff"), // nonzero pad bits
	}
	for i, b := range bad {
		if _, err := evidence.Decode(b); err == nil {
			t.Errorf("case %d: Decode accepted %x", i, b)
		}
	}
	// Out-of-order event records are rejected both at decode and compile.
	bogus := evidence.EventLog{Records: []evidence.EventRec{{Index: 5}, {Index: 4}}}
	if _, err := evidence.Decode((evidence.Set{bogus}).Encode()); err == nil {
		t.Error("Decode accepted out-of-order event log")
	}
	bug := workload.Fig1()
	if d, _, err := bug.FindFailure(10); err == nil {
		if _, cerr := (evidence.Set{bogus}).Compile(bug.Program(), d); cerr == nil {
			t.Error("Compile accepted out-of-order event log")
		}
	}
}

// recorded finds a failing run of the bug with the recorder attached,
// probing the bug's racy global when it names one.
func recorded(t *testing.T, bug *workload.Bug) (*workload.Bug, evidence.Set, *res.Dump) {
	t.Helper()
	rcfg := evidence.RecordConfig{EventEvery: 3, EventWindow: 64, BranchWindow: 64, ProbeEvery: 4, ProbeWindow: 32}
	if addr, ok := bug.GlobalAddr(bug.RacyGlobal); ok && bug.RacyGlobal != "" {
		rcfg.ProbeAddrs = []uint32{addr}
	}
	d, set, _, err := bug.FindFailureRecorded(60, rcfg)
	if err != nil {
		t.Fatalf("%s: %v", bug.Name, err)
	}
	return bug, set, d
}

// kindOf picks one source kind out of a recorded set.
func kindOf(set evidence.Set, kind string) (evidence.Source, bool) {
	for _, src := range set {
		if src.Kind() == kind {
			return src, true
		}
	}
	return nil, false
}

// coreAttempts runs the full (no early stop) backward search with the
// given evidence and returns its statistics.
func coreAttempts(t *testing.T, bug *workload.Bug, d *res.Dump, srcs evidence.Set) core.Stats {
	t.Helper()
	p := bug.Program()
	prs, err := srcs.Compile(p, d)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(p, core.Options{MaxDepth: 12, MaxNodes: 4000, Evidence: prs, Preds: core.BuildPredIndex(p)})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Stats
}

// causeKey analyzes through the public session API and returns the root
// cause's bucketing key ("" when none was identified).
func causeKey(t *testing.T, bug *workload.Bug, d *res.Dump, srcs evidence.Set) string {
	t.Helper()
	a := res.NewAnalyzer(bug.Program(), res.WithMaxDepth(12), res.WithMaxNodes(4000))
	var opts []res.Option
	if len(srcs) > 0 {
		opts = append(opts, res.WithEvidence(srcs...))
	}
	r, err := a.Analyze(context.Background(), d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cause == nil {
		return ""
	}
	return r.Cause.Key()
}

// assertPrunes is the acceptance contract for one source kind: on every
// listed bug the source strictly reduces the full search's backward-step
// attempts and the session analysis still identifies the same root
// cause.
func assertPrunes(t *testing.T, kind string, bugs []*workload.Bug) {
	t.Helper()
	for _, b := range bugs {
		bug, set, d := recorded(t, b)
		src, ok := kindOf(set, kind)
		if !ok {
			t.Fatalf("%s: recorder produced no %s evidence", bug.Name, kind)
		}
		base := coreAttempts(t, bug, d, nil)
		pruned := coreAttempts(t, bug, d, evidence.Set{src})
		if pruned.Attempts >= base.Attempts {
			t.Errorf("%s: %s did not prune: %d attempts vs %d baseline", bug.Name, kind, pruned.Attempts, base.Attempts)
		}
		baseKey := causeKey(t, bug, d, nil)
		if baseKey == "" {
			t.Fatalf("%s: baseline found no cause", bug.Name)
		}
		if got := causeKey(t, bug, d, evidence.Set{src}); got != baseKey {
			t.Errorf("%s: %s changed the root cause: %q vs %q", bug.Name, kind, got, baseKey)
		}
	}
}

func TestEventLogPrunes(t *testing.T) {
	assertPrunes(t, "event-log", []*workload.Bug{
		workload.RaceCounter(),
		workload.MultiSiteRace(),
		workload.AmbiguousDispatch(8),
	})
}

func TestBranchTracePrunes(t *testing.T) {
	assertPrunes(t, "branch-trace", []*workload.Bug{
		workload.RaceCounter(),
		workload.AmbiguousDispatch(8),
	})
}

func TestMemProbePrunes(t *testing.T) {
	assertPrunes(t, "mem-probe", []*workload.Bug{
		workload.RaceCounter(),
		workload.AtomViolation(),
	})
}

// TestLegacyHintsByteIdentical is the migration contract: the classic
// WithLBR/WithMatchOutputs options — now lowered through evidence.Source
// — produce reports byte-identical to explicitly supplying the same
// sources via WithEvidence, except for the provenance field only the
// explicit path reports; and the legacy path's JSON carries no evidence
// provenance at all, so pre-migration consumers see unchanged bytes.
func TestLegacyHintsByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, bug := range []*workload.Bug{workload.Fig1(), workload.RaceCounter(), workload.AmbiguousDispatch(8)} {
		p := bug.Program()
		d, _, err := bug.FindFailure(60)
		if err != nil {
			t.Fatalf("%s: %v", bug.Name, err)
		}
		base := []res.Option{res.WithMaxDepth(10), res.WithMaxNodes(2000)}
		legacy := res.NewAnalyzer(p, append(base, res.WithLBR(res.LBRRecordAll), res.WithMatchOutputs())...)
		explicit := res.NewAnalyzer(p, append(base,
			res.WithEvidence(evidence.LBR{Mode: breadcrumb.RecordAll}, evidence.OutputLog{}))...)

		rl, err := legacy.Analyze(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		re, err := explicit.Analyze(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		jl := normalized(t, rl)
		if bytes.Contains(jl, []byte(`"evidence"`)) {
			t.Errorf("%s: legacy options leaked evidence provenance into the report", bug.Name)
		}
		// The explicit path carries provenance; the underlying analysis
		// must be identical.
		if got := re.Evidence; len(got) != 2 || got[0] != "lbr" || got[1] != "output-log" {
			t.Errorf("%s: explicit provenance = %v", bug.Name, got)
		}
		re.Evidence = nil
		if je := normalized(t, re); !bytes.Equal(jl, je) {
			t.Errorf("%s: evidence-migrated report differs from legacy:\n--- legacy\n%s\n--- evidence\n%s", bug.Name, jl, je)
		}
	}
}

func normalized(t testing.TB, r *res.Result) []byte {
	t.Helper()
	rep := r.JSONReport()
	rep.ElapsedMS = 0
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestRecorderObservationOnly: recording evidence must not perturb the
// execution — the dump with recording is byte-identical to without.
func TestRecorderObservationOnly(t *testing.T) {
	bug := workload.RaceCounter()
	d1, _, err := bug.FindFailure(60)
	if err != nil {
		t.Fatal(err)
	}
	d2, set, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{EventEvery: 2, BranchWindow: 32})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := d1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("recording evidence changed the dump")
	}
	if len(set) == 0 {
		t.Fatal("recorder saw nothing")
	}
	// Recorded event logs honor their canonical invariants by
	// construction: re-encoding the recorded set round-trips.
	enc := set.Encode()
	dec, err := evidence.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("recorded evidence does not round-trip canonically")
	}
}

// TestEvidenceWindowsBound: the recorder's rings discard old entries, so
// arbitrarily long executions record bounded evidence.
func TestEvidenceWindowsBound(t *testing.T) {
	bug := workload.LongPrefix(200)
	d, set, _, err := bug.FindFailureRecorded(10, evidence.RecordConfig{
		EventEvery: 1, EventWindow: 16, BranchWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Steps < 100 {
		t.Fatalf("expected a long run, got %d steps", d.Steps)
	}
	for _, src := range set {
		switch s := src.(type) {
		case evidence.EventLog:
			if len(s.Records) != 16 {
				t.Errorf("event window not enforced: %d records", len(s.Records))
			}
			// The surviving entries are the most recent ones.
			if last := s.Records[len(s.Records)-1].Index; last != d.Steps-1 {
				t.Errorf("last event at index %d, want %d", last, d.Steps-1)
			}
		case evidence.BranchTrace:
			if len(s.Bits) != 8 {
				t.Errorf("branch window not enforced: %d bits", len(s.Bits))
			}
		}
	}
}

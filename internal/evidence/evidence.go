// Package evidence is the pluggable production-hint subsystem: every
// piece of cheap evidence a production deployment can collect about a
// failed execution — branch records, error logs, sampled event
// timestamps, partial branch traces, periodic memory probes — is a
// Source that compiles into backward-search constraints for RES.
//
// The paper's bet (§2.4) is that a coredump plus whatever hints
// production already has is enough to synthesize a failing suffix. The
// seed system hard-wired two such hints (the LBR ring and output-log
// matching); this package makes the hint space open-ended: a Source
// lowers its evidence into a core.Pruner — a pre-step candidate filter,
// post-step symbolic constraints discharged through the incremental
// solver, or both — and carries a canonical wire encoding with a content
// fingerprint so evidence participates in the ingestion service's
// content-addressed caching.
//
// Timestamps are the VM's block-step counter: the dump records how many
// basic blocks executed before the failure (coredump.Dump.Steps), so an
// evidence record stamped with block index I pins suffix depth
// Steps - I exactly — the discrete analogue of Maruyama-style
// timestamp-based execution control.
package evidence

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/prog"
)

// Source is one piece of production-side evidence about the failed
// execution. A Source is immutable once built; Compile may be called
// concurrently for different dumps.
type Source interface {
	// Kind is the stable wire tag identifying the source type.
	Kind() string
	// Compile lowers the evidence into a search pruner for one
	// program+dump pair. The returned pruner must be read-only (safe to
	// share across the engine's candidate workers).
	Compile(p *prog.Program, d *coredump.Dump) (core.Pruner, error)
	// encodePayload renders the source's canonical payload bytes (the
	// wire form minus the kind tag). Internal: encoding goes through
	// Set.Encode so the container stays canonical.
	encodePayload() []byte
}

// Set is an ordered collection of evidence sources. Order is
// significant: it fixes both the wire encoding (and so the fingerprint)
// and the order pruners are applied in the search.
type Set []Source

// Kinds returns the source kinds in order.
func (s Set) Kinds() []string {
	out := make([]string, len(s))
	for i, src := range s {
		out[i] = src.Kind()
	}
	return out
}

// Compile lowers every source against one program+dump pair, in order.
func (s Set) Compile(p *prog.Program, d *coredump.Dump) ([]core.Pruner, error) {
	if len(s) == 0 {
		return nil, nil
	}
	if len(s) > core.MaxPruners {
		return nil, fmt.Errorf("evidence: %d sources exceeds the engine's %d-pruner limit", len(s), core.MaxPruners)
	}
	out := make([]core.Pruner, len(s))
	for i, src := range s {
		pr, err := src.Compile(p, d)
		if err != nil {
			return nil, fmt.Errorf("evidence: compiling %s: %w", src.Kind(), err)
		}
		out[i] = pr
	}
	return out, nil
}

// Fingerprint is the content address of the set: the hex SHA-256 of its
// canonical encoding. An empty set fingerprints to the empty string, so
// "no evidence" and "evidence present" can never collide in a cache key.
func (s Set) Fingerprint() string {
	if len(s) == 0 {
		return ""
	}
	sum := sha256.Sum256(s.Encode())
	return hex.EncodeToString(sum[:])
}

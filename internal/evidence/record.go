package evidence

import (
	"sort"

	"res/internal/isa"
	"res/internal/prog"
	"res/internal/vm"
)

// RecordConfig tunes the production-side evidence recorder. Every knob
// models something a deployment could collect almost for free: sampled
// scheduler breadcrumbs, a hardware branch-trace window, a watchdog
// peeking at a few globals.
type RecordConfig struct {
	// EventEvery samples every Nth block start into the event log
	// (0 disables the log).
	EventEvery int
	// EventWindow bounds the event log to its most recent entries
	// (0 = unbounded).
	EventWindow int
	// BranchWindow keeps the taken/not-taken outcome of the last N
	// conditional branches (0 disables the trace).
	BranchWindow int
	// ProbeAddrs are the memory words probed every ProbeEvery block
	// starts (both must be set for probes to record).
	ProbeAddrs []uint32
	// ProbeEvery samples the probe addresses every Nth block start.
	ProbeEvery int
	// ProbeWindow bounds the probe log to its most recent entries
	// (0 = unbounded).
	ProbeWindow int
}

// Recorder collects evidence from a live VM run. Create one per run,
// install its Hooks in the vm.Config, Bind it to the VM (required only
// for memory probes), run, and take the Evidence after the failure:
//
//	rec := evidence.NewRecorder(p, cfg)
//	vcfg.Hooks = rec.Hooks()
//	v, _ := vm.New(p, vcfg)
//	rec.Bind(v)
//	d, _ := v.Run()
//	set := rec.Evidence()
//
// The recorder is observation-only: it never changes the execution, so
// the dump produced with recording is byte-identical to one produced
// without.
type Recorder struct {
	cfg    RecordConfig
	p      *prog.Program
	v      *vm.VM
	steps  uint64
	events []EventRec
	bits   []bool
	probes []Probe
}

// NewRecorder creates a recorder for one run of p.
func NewRecorder(p *prog.Program, cfg RecordConfig) *Recorder {
	addrs := append([]uint32(nil), cfg.ProbeAddrs...)
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	// Deduplicate: the wire form requires strictly increasing (index, addr).
	j := 0
	for i, a := range addrs {
		if i == 0 || a != addrs[j-1] {
			addrs[j] = a
			j++
		}
	}
	cfg.ProbeAddrs = addrs[:j]
	return &Recorder{cfg: cfg, p: p}
}

// Bind gives the recorder access to the VM's memory for probes. Call it
// after vm.New and before Run.
func (r *Recorder) Bind(v *vm.VM) { r.v = v }

// Hooks returns the VM observation hooks that drive the recorder.
func (r *Recorder) Hooks() vm.Hooks {
	return vm.Hooks{OnBlockStart: r.onBlockStart, OnBranch: r.onBranch}
}

func (r *Recorder) onBlockStart(tid, block int) {
	idx := r.steps
	r.steps++
	if r.cfg.EventEvery > 0 && idx%uint64(r.cfg.EventEvery) == 0 {
		r.events = append(r.events, EventRec{Index: idx, Tid: tid, Block: block})
		if r.cfg.EventWindow > 0 && len(r.events) > r.cfg.EventWindow {
			r.events = r.events[1:]
		}
	}
	if r.cfg.ProbeEvery > 0 && len(r.cfg.ProbeAddrs) > 0 && r.v != nil &&
		idx%uint64(r.cfg.ProbeEvery) == 0 {
		for _, a := range r.cfg.ProbeAddrs {
			r.probes = append(r.probes, Probe{Index: idx, Addr: a, Value: r.v.Mem.Load(a)})
		}
		if r.cfg.ProbeWindow > 0 && len(r.probes) > r.cfg.ProbeWindow {
			r.probes = r.probes[len(r.probes)-r.cfg.ProbeWindow:]
		}
	}
}

func (r *Recorder) onBranch(from, to int) {
	if r.cfg.BranchWindow <= 0 || from < 0 || from >= len(r.p.Code) {
		return
	}
	in := &r.p.Code[from]
	if in.Op != isa.OpBr {
		return
	}
	r.bits = append(r.bits, to == in.Target)
	if len(r.bits) > r.cfg.BranchWindow {
		r.bits = r.bits[1:]
	}
}

// Steps returns the number of block starts observed so far.
func (r *Recorder) Steps() uint64 { return r.steps }

// Evidence snapshots the recorded evidence as a Set, in a fixed source
// order (event log, branch trace, probes). Disabled or empty channels
// are omitted, so a recorder that saw nothing yields an empty set.
func (r *Recorder) Evidence() Set {
	var set Set
	if len(r.events) > 0 {
		set = append(set, EventLog{Records: append([]EventRec(nil), r.events...)})
	}
	if len(r.bits) > 0 {
		set = append(set, BranchTrace{Bits: append([]bool(nil), r.bits...)})
	}
	if len(r.probes) > 0 {
		set = append(set, MemProbe{Probes: append([]Probe(nil), r.probes...)})
	}
	return set
}

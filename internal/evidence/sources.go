package evidence

import (
	"fmt"
	"io"

	"res/internal/breadcrumb"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/solver"
	"res/internal/symx"
)

// Wire tags. Stable: they are part of the evidence fingerprint.
const (
	kindLBR         = "lbr"
	kindOutputLog   = "output-log"
	kindEventLog    = "event-log"
	kindBranchTrace = "branch-trace"
	kindMemProbe    = "mem-probe"
)

// noConstrain is embedded by filter-only pruners.
type noConstrain struct{}

func (noConstrain) Constrain(int, core.StepInfo, *core.Child) (int, bool, bool) {
	return 0, false, true
}

// allowAll is embedded by constrain-only pruners.
type allowAll struct{}

func (allowAll) Filter(int, core.StepInfo) (bool, bool) { return true, false }

// --- LBR -------------------------------------------------------------------

// LBR prunes with the dump's own hardware branch ring, interpreted under
// the given recording mode. The ring itself travels inside the coredump
// (hardware collects it for free); the evidence record carries only the
// interpretation mode, so this source is the Source-interface form of
// the classic WithLBR hint.
type LBR struct {
	Mode breadcrumb.Mode
}

func (LBR) Kind() string { return kindLBR }

// Compile wraps the breadcrumb package's ring filter.
func (l LBR) Compile(p *prog.Program, d *coredump.Dump) (core.Pruner, error) {
	if l.Mode != breadcrumb.RecordAll && l.Mode != breadcrumb.SkipConditional {
		return nil, fmt.Errorf("bad LBR mode %d", l.Mode)
	}
	return lbrPruner{f: breadcrumb.LBRFilter(p, d.LBR, l.Mode)}, nil
}

func (l LBR) encodePayload() []byte {
	e := &encoder{}
	e.uvarint(uint64(l.Mode))
	return e.buf.Bytes()
}

func decodeLBR(d *decoder) Source {
	mode := breadcrumb.Mode(d.uvarint())
	if d.err == nil && mode != breadcrumb.RecordAll && mode != breadcrumb.SkipConditional {
		d.fail("bad LBR mode %d", mode)
	}
	return LBR{Mode: mode}
}

type lbrPruner struct {
	noConstrain
	f core.Filter
}

func (l lbrPruner) Filter(used int, s core.StepInfo) (bool, bool) {
	return l.f(used, s.HasTransfer, s.From, s.To)
}

// --- Output log ------------------------------------------------------------

// OutputLog prunes with error-log breadcrumbs: a candidate suffix's
// OUTPUT records must match the tail of the dump's output log, newest
// first, and the matched values are discharged through the solver. This
// is the Source-interface form of the classic WithMatchOutputs hint; the
// log itself travels inside the coredump.
type OutputLog struct{}

func (OutputLog) Kind() string { return kindOutputLog }

func (OutputLog) Compile(p *prog.Program, d *coredump.Dump) (core.Pruner, error) {
	return outputPruner{log: d.Outputs}, nil
}

func (OutputLog) encodePayload() []byte { return nil }

func decodeOutputLog(*decoder) Source { return OutputLog{} }

type outputPruner struct {
	allowAll
	log []coredump.OutputRec
}

// Constrain matches the step's OUTPUT records against the log tail,
// newest first (§2.4: "existing error logs can provide RES with useful,
// coarse-grained breadcrumbs"). A pc/tag mismatch rejects the child with
// no solver call; matched records equate the symbolic output value with
// the logged one and request one incremental check.
func (o outputPruner) Constrain(used int, _ core.StepInfo, c *core.Child) (int, bool, bool) {
	if len(c.Outputs) == 0 {
		return 0, false, true
	}
	consumed := 0
	for i := len(c.Outputs) - 1; i >= 0; i-- {
		ou := c.Outputs[i]
		idx := len(o.log) - 1 - (used + consumed)
		if idx < 0 {
			break // beyond the recorded log horizon
		}
		want := o.log[idx]
		if want.PC != ou.PC || want.Tag != ou.Tag {
			return consumed, false, false
		}
		c.Snap.AddCons(solver.Eq(ou.Value, symx.Const(want.Value)))
		consumed++
	}
	return consumed, true, true
}

// --- Event log -------------------------------------------------------------

// EventRec is one sampled scheduling breadcrumb: at global block index
// Index (the VM's step counter, 0-based), thread Tid began executing
// block Block.
type EventRec struct {
	Index      uint64
	Tid, Block int
}

// EventLog is a sparse, timestamped sample of the execution's schedule:
// production recorded every Nth block start (with arbitrary gaps) into a
// bounded ring. Because each record is stamped with the block-step index
// and the dump knows the total step count, every record inside the
// search horizon pins one suffix depth exactly: the anchored depths must
// reproduce the recorded (thread, block) steps, in order, and candidates
// that disagree are vetoed before any solver work.
type EventLog struct {
	// Records must be sorted by strictly increasing Index (one thread
	// starts one block per step).
	Records []EventRec
}

func (EventLog) Kind() string { return kindEventLog }

func (l EventLog) Compile(p *prog.Program, d *coredump.Dump) (core.Pruner, error) {
	if err := validateEventRecs(l.Records); err != nil {
		return nil, err
	}
	// Anchor each in-horizon record to its suffix depth: the step at
	// depth n is the execution's (Steps-n)-th block start (depth 1 is the
	// faulting/final block, counted by the VM like any other). Depth 1 is
	// the base case, pinned by the dump itself; records older than the
	// dump's step count are inconsistent metadata and anchor nothing.
	anchors := make(map[int]EventRec)
	for _, r := range l.Records {
		if r.Index >= d.Steps {
			continue
		}
		depth := int(d.Steps - r.Index)
		if depth < 2 {
			continue
		}
		anchors[depth] = r
	}
	return eventPruner{anchors: anchors}, nil
}

func validateEventRecs(recs []EventRec) error {
	for i, r := range recs {
		if i > 0 && r.Index <= recs[i-1].Index {
			return fmt.Errorf("event-log records not strictly increasing at %d", i)
		}
		if r.Tid < 0 || r.Block < 0 {
			return fmt.Errorf("event-log record %d: negative tid/block", i)
		}
	}
	return nil
}

func (l EventLog) encodePayload() []byte {
	e := &encoder{}
	e.uvarint(uint64(len(l.Records)))
	for _, r := range l.Records {
		e.uvarint(r.Index)
		e.varint(int64(r.Tid))
		e.varint(int64(r.Block))
	}
	return e.buf.Bytes()
}

func decodeEventLog(d *decoder) Source {
	n := d.uvarint()
	if d.err != nil {
		return EventLog{}
	}
	if n > maxRecords {
		d.fail("unreasonable event-log count %d", n)
		return EventLog{}
	}
	recs := make([]EventRec, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		recs = append(recs, EventRec{
			Index: d.uvarint(),
			Tid:   int(d.varint()),
			Block: int(d.varint()),
		})
	}
	if d.err == nil {
		if err := validateEventRecs(recs); err != nil {
			d.fail("%v", err)
		}
	}
	return EventLog{Records: recs}
}

type eventPruner struct {
	noConstrain
	anchors map[int]EventRec
}

func (e eventPruner) Filter(used int, s core.StepInfo) (bool, bool) {
	a, ok := e.anchors[s.ChildDepth]
	if !ok {
		return true, false // unanchored depth: no evidence either way
	}
	return a.Tid == s.Tid && a.Block == s.Block, false
}

// --- Branch trace ----------------------------------------------------------

// BranchTrace is an Intel-PT-style partial branch trace: the
// taken/not-taken outcome of the most recent conditional branches
// (across all threads, in retirement order), oldest first. It is
// stricter than the LBR ring on conditional control flow — one bit per
// branch buys a much deeper window than sixteen from/to pairs — while
// recording nothing about unconditional transfers, which RES re-derives
// from the CFG.
type BranchTrace struct {
	// Bits are the outcomes, oldest first; true = taken (the branch went
	// to its primary target).
	Bits []bool
}

func (BranchTrace) Kind() string { return kindBranchTrace }

func (b BranchTrace) Compile(p *prog.Program, d *coredump.Dump) (core.Pruner, error) {
	return branchPruner{p: p, bits: b.Bits}, nil
}

func (b BranchTrace) encodePayload() []byte {
	e := &encoder{}
	e.uvarint(uint64(len(b.Bits)))
	e.buf.Write(packBits(b.Bits))
	return e.buf.Bytes()
}

// packBits packs LSB-first; trailing pad bits are zero (a canonical-form
// invariant the decoder enforces).
func packBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

func decodeBranchTrace(d *decoder) Source {
	n := d.uvarint()
	if d.err != nil {
		return BranchTrace{}
	}
	if n > maxRecords {
		d.fail("unreasonable branch-trace length %d", n)
		return BranchTrace{}
	}
	packed := make([]byte, (n+7)/8)
	if len(packed) > 0 {
		if _, err := io.ReadFull(d.r, packed); err != nil {
			d.fail("%v", err)
			return BranchTrace{}
		}
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	// Canonical form: pad bits are zero.
	if n%8 != 0 && packed[len(packed)-1]>>(n%8) != 0 {
		d.fail("branch-trace pad bits not zero")
	}
	return BranchTrace{Bits: bits}
}

type branchPruner struct {
	noConstrain
	p    *prog.Program
	bits []bool
}

// Filter consumes one trace bit per conditional transfer, newest first
// while walking backward, and vetoes candidates whose direction
// contradicts the recorded outcome. Unconditional transfers are not
// recorded and pass through; candidates beyond the window are allowed.
func (b branchPruner) Filter(used int, s core.StepInfo) (bool, bool) {
	if !s.HasTransfer || s.From < 0 || s.From >= len(b.p.Code) {
		return true, false
	}
	in := &b.p.Code[s.From]
	if in.Op != isa.OpBr {
		return true, false
	}
	idx := len(b.bits) - 1 - used
	if idx < 0 {
		return true, false // beyond the recorded horizon
	}
	if in.Target == in.Target2 {
		// Both directions land on the same block: the bit is
		// uninformative but the hardware still burned one.
		return true, true
	}
	taken := s.To == in.Target
	return taken == b.bits[idx], true
}

// --- Memory probes ---------------------------------------------------------

// Probe is one observed memory word: at global block index Index (before
// that block executed), address Addr held Value.
type Probe struct {
	Index uint64
	Addr  uint32
	Value int64
}

// MemProbe carries a few timestamped address/value observations — a
// production-side watchdog peeking at key globals every N blocks. Each
// in-horizon probe is discharged through the solver exactly like dump
// state: the symbolic pre-state of the anchored suffix depth must admit
// the observed value, which both prunes wrong paths and narrows the
// inferred pre-image.
type MemProbe struct {
	// Probes must be sorted by strictly increasing (Index, Addr).
	Probes []Probe
}

func (MemProbe) Kind() string { return kindMemProbe }

func (m MemProbe) Compile(p *prog.Program, d *coredump.Dump) (core.Pruner, error) {
	if err := validateProbes(m.Probes); err != nil {
		return nil, err
	}
	// A probe at block index I observed memory before that block ran; a
	// node at depth n holds the symbolic state before the (Steps-n)-th
	// block start, so the probe anchors depth Steps-I. Depth 1 is the
	// base case (its pre-state is the root node, never re-derived by
	// tryStep), so probes there are skipped like out-of-horizon ones.
	byDepth := make(map[int][]Probe)
	for _, pb := range m.Probes {
		if pb.Index >= d.Steps {
			continue
		}
		depth := int(d.Steps - pb.Index)
		if depth < 2 {
			continue
		}
		byDepth[depth] = append(byDepth[depth], pb)
	}
	return probePruner{byDepth: byDepth}, nil
}

func validateProbes(probes []Probe) error {
	for i, pb := range probes {
		if i == 0 {
			continue
		}
		prev := probes[i-1]
		if pb.Index < prev.Index || (pb.Index == prev.Index && pb.Addr <= prev.Addr) {
			return fmt.Errorf("mem-probe records not strictly increasing at %d", i)
		}
	}
	return nil
}

func (m MemProbe) encodePayload() []byte {
	e := &encoder{}
	e.uvarint(uint64(len(m.Probes)))
	for _, pb := range m.Probes {
		e.uvarint(pb.Index)
		e.uvarint(uint64(pb.Addr))
		e.varint(pb.Value)
	}
	return e.buf.Bytes()
}

func decodeMemProbe(d *decoder) Source {
	n := d.uvarint()
	if d.err != nil {
		return MemProbe{}
	}
	if n > maxRecords {
		d.fail("unreasonable mem-probe count %d", n)
		return MemProbe{}
	}
	probes := make([]Probe, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		probes = append(probes, Probe{
			Index: d.uvarint(),
			Addr:  uint32(d.uvarint()),
			Value: d.varint(),
		})
	}
	if d.err == nil {
		if err := validateProbes(probes); err != nil {
			d.fail("%v", err)
		}
	}
	return MemProbe{Probes: probes}
}

type probePruner struct {
	allowAll
	byDepth map[int][]Probe
}

func (p probePruner) Constrain(_ int, s core.StepInfo, c *core.Child) (int, bool, bool) {
	probes := p.byDepth[s.ChildDepth]
	if len(probes) == 0 {
		return 0, false, true
	}
	for _, pb := range probes {
		c.Snap.AddCons(solver.Eq(c.Snap.MemAt(pb.Addr), symx.Const(pb.Value)))
	}
	return 0, true, true
}

package evidence

import (
	"bytes"
	"testing"
)

// FuzzEvidenceDecode guards the evidence wire decoder the way
// FuzzDumpRoundTrip guards the dump codec: arbitrary bytes must never
// panic or allocate unboundedly, anything that decodes must re-encode to
// a canonical form that is a fixed point under another decode/encode
// cycle, and the content fingerprint must be stable across the trip — a
// violation would make identical evidence hash to different cache keys
// (misses forever) or different evidence collide. The seed corpus under
// testdata/fuzz/FuzzEvidenceDecode is checked in.
func FuzzEvidenceDecode(f *testing.F) {
	seeds := []Set{
		nil,
		{LBR{Mode: 0}},
		{LBR{Mode: 1}, OutputLog{}},
		{EventLog{Records: []EventRec{{Index: 0, Tid: 0, Block: 1}, {Index: 7, Tid: 1, Block: 3}}}},
		{BranchTrace{Bits: []bool{true, false, true, true, false, false, false, true, true}}},
		{MemProbe{Probes: []Probe{{Index: 2, Addr: 16, Value: -9}, {Index: 2, Addr: 20, Value: 4}}}},
		{
			LBR{Mode: 1},
			OutputLog{},
			EventLog{Records: []EventRec{{Index: 5, Tid: 2, Block: 9}}},
			BranchTrace{Bits: []bool{false}},
			MemProbe{Probes: []Probe{{Index: 1, Addr: 3, Value: 1 << 40}}},
		},
	}
	for _, s := range seeds {
		f.Add(s.Encode())
	}
	f.Add([]byte("RESEVID1"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := Decode(data)
		if err != nil {
			return // not evidence; rejecting is the correct behavior
		}
		canon := set.Encode()
		set2, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if canon2 := set2.Encode(); !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:  %x\nsecond: %x", canon, canon2)
		}
		if set.Fingerprint() != set2.Fingerprint() {
			t.Fatal("fingerprint changed across round trip")
		}
		if len(set) != len(set2) {
			t.Fatalf("round trip changed source count: %d vs %d", len(set), len(set2))
		}
		for i := range set {
			if set[i].Kind() != set2[i].Kind() {
				t.Fatalf("source %d kind changed: %s vs %s", i, set[i].Kind(), set2[i].Kind())
			}
		}
	})
}

package evidence_test

import (
	"testing"

	"res/internal/evidence"
)

// TestDecodeDamagedWire: every truncation of a valid evidence encoding
// fails cleanly (no panic, no half-parsed set silently accepted as
// complete), and single-bit flips never panic — the guarantees the
// submit-path degrade semantics lean on.
func TestDecodeDamagedWire(t *testing.T) {
	set := evidence.Set{
		evidence.EventLog{Records: []evidence.EventRec{
			{Index: 3, Tid: 0, Block: 2},
			{Index: 9, Tid: 1, Block: 5},
		}},
		evidence.BranchTrace{Bits: []bool{true, false, true, true, false}},
	}
	wire := set.Encode()
	if _, err := evidence.Decode(wire); err != nil {
		t.Fatalf("pristine wire does not decode: %v", err)
	}
	for cut := 1; cut < len(wire); cut++ {
		if _, err := evidence.Decode(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(wire))
		}
	}
	for i := 0; i < len(wire); i++ {
		flipped := append([]byte(nil), wire...)
		flipped[i] ^= 0x10
		evidence.Decode(flipped) // must not panic; error or reinterpretation both fine
	}
}

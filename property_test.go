package res_test

import (
	"fmt"
	"math/rand"
	"testing"

	"res"
	"res/internal/coredump"
	"res/internal/rootcause"
	"res/internal/workload"
)

// genProgram builds a random single-threaded program: a sequence of
// arithmetic over globals and inputs, sprinkled with branches, ending in
// an assert that is engineered to fail. The generator is the fuzzing half
// of the property test below.
func genProgram(rng *rand.Rand) (string, map[int64][]int64) {
	nGlobals := 2 + rng.Intn(3)
	src := ""
	for g := 0; g < nGlobals; g++ {
		src += fmt.Sprintf(".global g%d 1\n", g)
	}
	src += "func main:\n"
	var inputs []int64
	nBlocks := 2 + rng.Intn(5)
	reg := func() int { return 1 + rng.Intn(6) } // r1..r6
	for b := 0; b < nBlocks; b++ {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				src += fmt.Sprintf("    const r%d, %d\n", reg(), rng.Intn(100)-50)
			case 1:
				src += fmt.Sprintf("    addi r%d, r%d, %d\n", reg(), reg(), rng.Intn(20)-10)
			case 2:
				src += fmt.Sprintf("    add r%d, r%d, r%d\n", reg(), reg(), reg())
			case 3:
				src += fmt.Sprintf("    xor r%d, r%d, r%d\n", reg(), reg(), reg())
			case 4:
				g := rng.Intn(nGlobals)
				if rng.Intn(2) == 0 {
					src += fmt.Sprintf("    storeg r%d, &g%d\n", reg(), g)
				} else {
					src += fmt.Sprintf("    loadg r%d, &g%d\n", reg(), g)
				}
			case 5:
				v := int64(rng.Intn(40) - 20)
				inputs = append(inputs, v)
				src += fmt.Sprintf("    input r%d, 0\n", reg())
			}
		}
		// A branch whose both arms converge at the next label keeps the
		// CFG interesting without risking non-termination.
		src += fmt.Sprintf("    cmplt r7, r%d, r%d\n", reg(), reg())
		src += fmt.Sprintf("    br r7, l%d, l%d\n", b, b)
		src += fmt.Sprintf("l%d:\n", b)
	}
	src += "    const r8, 0\n    assert r8\n    halt\n"
	return src, map[int64][]int64{0: inputs}
}

// TestPropertyRandomProgramsReplayExactly is the library's core soundness
// property, fuzz-tested: for arbitrary programs that crash, every suffix
// RES synthesizes must replay to the exact coredump (fault, memory and
// registers) — the "no false positives" contract of the paper.
func TestPropertyRandomProgramsReplayExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(20130501)) // the HotOS'13 date
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		src, inputs := genProgram(rng)
		p, err := res.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: generator produced bad program: %v\n%s", trial, err, src)
		}
		d, err := res.Run(p, res.RunConfig{Inputs: inputs, MaxSteps: 100000})
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		if d == nil || d.Fault.Kind != coredump.FaultAssert {
			t.Fatalf("trial %d: expected the engineered assert failure, got %v", trial, d)
		}
		r, err := res.Analyze(p, d, res.Options{MaxDepth: 10, MaxNodes: 600})
		if err != nil {
			t.Fatalf("trial %d: analyze: %v\n%s", trial, err, src)
		}
		if r.Cause == nil {
			t.Fatalf("trial %d: no cause found; stats %+v\n%s", trial, r.Report.Stats, src)
		}
		if r.Replay == nil || !r.Replay.Matches {
			t.Fatalf("trial %d: suffix does not reproduce the dump\n%s", trial, src)
		}
		if r.HardwareSuspect {
			t.Fatalf("trial %d: software crash flagged as hardware", trial)
		}
	}
}

// TestUseAfterFreeEndToEnd: the UAF is silent in production (the crash is
// a downstream assert); checked replay of the suffix pinpoints the stale
// access.
func TestUseAfterFreeEndToEnd(t *testing.T) {
	bug := workload.UseAfterFree()
	p := bug.Program()
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Analyze(p, d, res.Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cause == nil || r.Cause.Kind != rootcause.UseAfterFree {
		t.Fatalf("cause = %v, want use-after-free", r.Cause)
	}
	// The blamed pc is the stale store, not the assert.
	stale := -1
	for pc := range p.Code {
		if p.Code[pc].String() == "store r2, r3, 0" {
			stale = pc
		}
	}
	if len(r.Cause.PCs) != 1 || r.Cause.PCs[0] != stale {
		t.Errorf("blamed %v, want [%d]", r.Cause.PCs, stale)
	}
}

// TestDeadlockEndToEnd: a deadlock dump (no faulting thread) is analyzed
// via the thread-less base case and classified as a deadlock.
func TestDeadlockEndToEnd(t *testing.T) {
	bug := workload.DeadlockBug()
	p := bug.Program()
	d, _, err := bug.FindFailure(60)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fault.Thread >= 0 {
		t.Fatalf("deadlock dump has a faulting thread: %v", d.Fault)
	}
	// Both threads must be blocked in the dump.
	blocked := 0
	for _, th := range d.Threads {
		if th.State == coredump.ThreadBlocked {
			blocked++
		}
	}
	if blocked != 2 {
		t.Fatalf("blocked threads = %d, want 2", blocked)
	}
	r, err := res.Analyze(p, d, res.Options{MaxDepth: 12, MaxNodes: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cause == nil {
		t.Fatalf("no cause; stats %+v", r.Report.Stats)
	}
	if r.Cause.Kind != rootcause.Deadlock && r.Cause.Kind != rootcause.DataRace && r.Cause.Kind != rootcause.AtomicityViolation {
		t.Errorf("cause = %v, want deadlock or a race-family diagnosis", r.Cause)
	}
	if r.HardwareSuspect {
		t.Error("deadlock flagged as hardware error")
	}
}

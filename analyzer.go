package res

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"res/internal/breadcrumb"
	"res/internal/checkpoint"
	"res/internal/core"
	"res/internal/evidence"
	"res/internal/hwerr"
	"res/internal/obs"
	"res/internal/replay"
	"res/internal/rootcause"
	"res/internal/solver"
	"res/internal/taint"
)

// Re-exported analysis types, so callers only import this package.
type (
	// Event is one progress report from the backward search (see the
	// EventKind constants). Delivered via WithObserver.
	Event = core.Event
	// EventKind classifies an Event.
	EventKind = core.EventKind
	// SearchStats aggregates backward-search effort.
	SearchStats = core.Stats
	// SolverOptions tunes constraint solving (WithSolverOptions).
	SolverOptions = solver.Options
	// LBRMode selects the (simulated) hardware branch-recording mode used
	// when interpreting a dump's branch ring (WithLBR).
	LBRMode = breadcrumb.Mode
	// HardwareVerdict is the §3.2 hardware-vs-software classification.
	HardwareVerdict = hwerr.Verdict
)

// Event kinds (re-exported from internal/core).
const (
	// EventDepth: the breadth-first frontier advanced to a new depth.
	EventDepth = core.EventDepth
	// EventNode: one backward step was attempted.
	EventNode = core.EventNode
	// EventSuffix: a feasible execution suffix was found.
	EventSuffix = core.EventSuffix
	// EventSolver: periodic solver/search statistics snapshot.
	EventSolver = core.EventSolver
)

// LBR interpretation modes (re-exported from internal/breadcrumb).
const (
	// LBRRecordAll models hardware that records every taken transfer.
	LBRRecordAll = breadcrumb.RecordAll
	// LBRSkipConditional models filtered hardware that records only
	// unconditional transfers.
	LBRSkipConditional = breadcrumb.SkipConditional
)

// config is the resolved analysis configuration an Analyzer carries and a
// single Analyze call can override.
type config struct {
	maxDepth     int
	maxNodes     int
	beamWidth    int
	useLBR       bool
	lbrMode      LBRMode
	matchOutputs bool
	evidence     []evidence.Source
	solver       SolverOptions
	observer     func(Event)
	parallelism  int
	checkpoints  *checkpoint.Ring
	trace        bool
}

// Option configures an Analyzer (at construction) or a single analysis
// (per Analyze/AnalyzeBatch call; per-call options override the
// analyzer's).
type Option func(*config)

// WithMaxDepth bounds the suffix length in blocks. 0 = default (24).
func WithMaxDepth(n int) Option { return func(c *config) { c.maxDepth = n } }

// WithMaxNodes bounds backward-step attempts. 0 = default (100000).
func WithMaxNodes(n int) Option { return func(c *config) { c.maxNodes = n } }

// WithBeamWidth caps the frontier nodes kept per depth. 0 = unlimited.
func WithBeamWidth(n int) Option { return func(c *config) { c.beamWidth = n } }

// WithLBR prunes the search with the dump's branch ring, interpreted
// under the given recording mode (LBRRecordAll or LBRSkipConditional).
func WithLBR(mode LBRMode) Option {
	return func(c *config) { c.useLBR, c.lbrMode = true, mode }
}

// WithMatchOutputs prunes the search with error-log breadcrumbs: the
// suffix's OUTPUT records must match the tail of the dump's output log.
func WithMatchOutputs() Option { return func(c *config) { c.matchOutputs = true } }

// WithEvidence prunes the search with production-side evidence: each
// source (an event log, a partial branch trace, memory probes, ...) is
// compiled into backward-search constraints for the analyzed dump.
// Sources accumulate across options — WithEvidence(a), WithEvidence(b)
// is WithEvidence(a, b) — and apply after any WithLBR/WithMatchOutputs
// hints (which are the same machinery under their classic names). The
// supplied sources are reported in the Result's Evidence provenance.
func WithEvidence(srcs ...EvidenceSource) Option {
	return func(c *config) { c.evidence = append(c.evidence, srcs...) }
}

// WithCheckpoints anchors the backward search on a checkpoint ring
// recorded during the failing execution (resrun -record-checkpoints).
// Before searching, the analyzer bisects the ring — forward-replays from
// candidate checkpoints to find the latest one that still reproduces the
// failure — and pins the search there: the suffix is bounded by the
// checkpoint interval instead of the execution length, and the anchor
// state is asserted as solver constraints, so histories inconsistent
// with the recording die early. If the anchored window yields only a
// generic cause, the analyzer widens to the next-earlier checkpoint and
// accepts the narrow answer only when the wider window confirms its
// cause key; disagreement falls back to the plain unanchored search, so
// anchoring never changes which root cause is reported. Pass nil to
// clear a previously configured ring.
func WithCheckpoints(r *CheckpointRing) Option {
	return func(c *config) { c.checkpoints = r }
}

// WithSolverOptions tunes constraint solving; zero fields take defaults.
func WithSolverOptions(o SolverOptions) Option { return func(c *config) { c.solver = o } }

// WithSearchParallelism sets how many candidate backward steps the search
// evaluates concurrently within each depth of one analysis. n <= 0 (and
// the unset default) means automatic: runtime.GOMAXPROCS(0) for a
// standalone Analyze, and the machine divided among the batch's workers
// inside AnalyzeBatch — so batch-level and candidate-level parallelism
// compose instead of multiplying. Pass 1 to force the sequential engine.
// Any value produces bit-identical results: candidate outcomes are
// merged in deterministic order, so reports, events, and triage buckets
// match the sequential engine exactly — only the wall-clock changes.
func WithSearchParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithObserver streams search progress events to fn. Events are delivered
// synchronously from the analyzing goroutine, so fn must be fast; during
// AnalyzeBatch it is called concurrently from all workers and must be
// safe for concurrent use.
func WithObserver(fn func(Event)) Option { return func(c *config) { c.observer = fn } }

// WithTrace records a per-analysis observability span tree: evidence
// compilation, checkpoint bisection (with per-probe forward-replay
// timings), every search depth's attempt counts and solver time, and
// each cause-extraction replay. The finished tree is attached to the
// Result as Trace (and to the JSON report's "trace" field), renderable
// as Chrome trace-event JSON via its ChromeTrace method. Tracing adds
// no behavioral branches to the search: the produced report is
// byte-identical (modulo the trace itself) with tracing on or off, at
// any parallelism. Traces carry wall-clock timings and are excluded
// from the report-determinism guarantee.
func WithTrace(on bool) Option { return func(c *config) { c.trace = on } }

// Analyzer is a long-lived analysis session for one program: construct it
// once per program and reuse it for every coredump of that program. The
// constructor precomputes the program's backward-CFG predecessor index so
// the search shares it across analyses instead of rebuilding it per node.
//
// An Analyzer is safe for concurrent use: Analyze may be called from any
// number of goroutines simultaneously (each call runs on its own engine
// and symbolic-variable pool; the shared program and predecessor index
// are read-only).
type Analyzer struct {
	p     *Program
	preds core.PredIndex
	base  config
}

// NewAnalyzer creates an analysis session for p. The options become the
// session defaults; individual Analyze calls can override them.
func NewAnalyzer(p *Program, opts ...Option) *Analyzer {
	a := &Analyzer{p: p, preds: core.BuildPredIndex(p)}
	for _, o := range opts {
		o(&a.base)
	}
	return a
}

// Program returns the program this session analyzes.
func (a *Analyzer) Program() *Program { return a.p }

// sources resolves the configured evidence, classic hints first: the
// WithLBR/WithMatchOutputs flags lower to their evidence.Source forms,
// then the explicitly supplied sources follow in order.
func (c config) sources() evidence.Set {
	var srcs evidence.Set
	if c.useLBR {
		srcs = append(srcs, evidence.LBR{Mode: c.lbrMode})
	}
	if c.matchOutputs {
		srcs = append(srcs, evidence.OutputLog{})
	}
	return append(srcs, c.evidence...)
}

// coreOptions lowers the resolved config to engine options for one dump.
// Evidence compiles per-dump (its constraints anchor to the dump's step
// count and breadcrumbs), which is why this can fail.
func (c config) coreOptions(a *Analyzer, d *Dump) (core.Options, error) {
	par := c.parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	copt := core.Options{
		MaxDepth:    c.maxDepth,
		MaxNodes:    c.maxNodes,
		BeamWidth:   c.beamWidth,
		Solver:      c.solver,
		OnEvent:     c.observer,
		Preds:       a.preds,
		Parallelism: par,
	}
	pruners, err := c.sources().Compile(a.p, d)
	if err != nil {
		return core.Options{}, err
	}
	copt.Evidence = pruners
	return copt, nil
}

// Analyze synthesizes an execution suffix for the dump and identifies the
// failure's root cause. It searches breadth-first: the first faithful
// suffix whose instrumented replay justifies a specific root cause (race,
// atomicity violation, heap corruption) stops the search; otherwise the
// deepest faithful suffix's analysis is returned.
//
// Cancellation and deadlines on ctx are observed between backward-step
// attempts and inside the solver's search loops, so Analyze returns
// promptly when the context ends. In that case it returns the partial
// Result accumulated so far (Partial is set, Report holds the partial
// search statistics, and Cause may or may not be populated) together with
// ctx.Err() — check the error, but do not discard the Result.
func (a *Analyzer) Analyze(ctx context.Context, d *Dump, opts ...Option) (*Result, error) {
	cfg := a.base
	for _, o := range opts {
		o(&cfg)
	}
	start := time.Now()
	var (
		tr   *obs.Trace
		root *obs.Span
	)
	if cfg.trace {
		tr = obs.NewTrace("analysis")
		root = tr.Root()
		root.SetInt("dump_steps", int64(d.Steps))
	}
	var (
		res *Result
		err error
	)
	if cfg.checkpoints != nil && !cfg.checkpoints.Empty() {
		res, err = a.analyzeCheckpointed(ctx, d, cfg, root)
	} else {
		res, _, err = a.runAnalysis(ctx, d, cfg, nil, root)
	}
	if res != nil {
		res.Elapsed = time.Since(start)
		if tr != nil {
			res.Trace = tr.Finish()
		}
	}
	return res, err
}

// searchAnchor pairs a checkpoint with its compiled anchor descriptor
// for one runAnalysis invocation. nil means an unanchored (plain) run.
type searchAnchor struct {
	ck     *checkpoint.Checkpoint
	anchor checkpoint.Anchor
}

// analyzeCheckpointed is Analyze with a checkpoint ring: bisect for the
// latest checkpoint that reproduces the failure, search the bounded
// window it pins, and escalate to wider windows only as far as needed to
// trust the answer.
//
// The escalation ladder is (1) anchored at the bisected checkpoint,
// (2) anchored at the next-earlier checkpoint, (3) plain full-depth
// search. A faithful specific cause is accepted where it is found — the
// suffix provably contains the defect. A faithful generic cause is
// accepted only when the next-wider window reproduces its cause key
// (the narrow window might have truncated the real defect); agreement
// returns the narrower run's result, so the reported anchor reflects
// the tightest window that was independently confirmed.
func (a *Analyzer) analyzeCheckpointed(ctx context.Context, d *Dump, cfg config, root *obs.Span) (*Result, error) {
	ring := cfg.checkpoints
	bspan := root.Child("checkpoint-bisect")
	onVerify := func(c *checkpoint.Checkpoint, dur time.Duration, ok bool) {
		v := bspan.Child("verify")
		v.SetAttrs(
			obs.Attr{Key: "step", Val: int64(c.Step)},
			obs.Attr{Key: "replay_ns", Val: dur.Nanoseconds()},
			obs.Attr{Key: "ok", Val: b2i(ok)},
		)
		v.End()
	}
	var (
		ck       *checkpoint.Checkpoint
		verified bool
	)
	if bspan != nil {
		ck, verified = ring.BisectObserved(a.p, d, onVerify)
	} else {
		ck, verified = ring.Bisect(a.p, d)
	}
	if ck == nil {
		bspan.End()
		res, _, err := a.runAnalysis(ctx, d, cfg, nil, root)
		return res, err
	}
	ladder := []*searchAnchor{{ck: ck, anchor: checkpoint.NewAnchor(ck, d.Steps, verified)}}
	if prev := ring.EarlierThan(ck.Step, d.Steps); prev != nil {
		var pv bool
		if bspan != nil {
			t0 := time.Now()
			pv = ring.Verify(a.p, prev, d)
			onVerify(prev, time.Since(t0), pv)
		} else {
			pv = ring.Verify(a.p, prev, d)
		}
		ladder = append(ladder, &searchAnchor{
			ck:     prev,
			anchor: checkpoint.NewAnchor(prev, d.Steps, pv),
		})
	}
	if bspan != nil {
		bspan.SetInt("anchor_step", int64(ck.Step))
		bspan.SetInt("verified", b2i(verified))
		bspan.End()
	}
	ladder = append(ladder, nil)

	var (
		prevRes  *Result
		prevBest *analysisCandidate
	)
	for i, sa := range ladder {
		res, best, err := a.runAnalysis(ctx, d, cfg, sa, root)
		if err != nil {
			return res, err
		}
		if best != nil && best.faithful {
			if specific(best.cause) {
				return res, nil
			}
			if prevBest != nil && prevBest.cause.Key() == best.cause.Key() {
				return prevRes, nil
			}
			if i == len(ladder)-1 {
				return res, nil
			}
			prevRes, prevBest = res, best
			continue
		}
		// Nothing faithful in this window: a wider window may still
		// succeed, but a previously found answer is not "confirmed
		// failed" by an empty wider search — the plain run decides.
		if i == len(ladder)-1 {
			if best == nil && prevRes != nil {
				return prevRes, nil
			}
			return res, nil
		}
		prevRes, prevBest = nil, nil
	}
	panic("unreachable")
}

// runAnalysis performs one backward search over the dump, optionally
// anchored at a checkpoint, and assembles the Result. It also returns
// the winning candidate so callers can reason about its quality.
func (a *Analyzer) runAnalysis(ctx context.Context, d *Dump, cfg config, sa *searchAnchor, root *obs.Span) (*Result, *analysisCandidate, error) {
	espan := root.Child("evidence-compile")
	copt, cerr := cfg.coreOptions(a, d)
	if espan != nil {
		if cerr == nil {
			espan.SetInt("pruners", int64(len(copt.Evidence)))
		}
		espan.End()
	}
	if cerr != nil {
		return nil, nil, cerr
	}
	if sa != nil {
		// The anchor pins the complete machine state at its depth:
		// searching deeper would only re-derive the recording, so the
		// anchor depth is also the depth bound.
		copt.MaxDepth = sa.anchor.Depth
		copt.Evidence = append(copt.Evidence, sa.anchor.Pruner(sa.ck))
	}
	sspan := root.Child("search")
	if sspan != nil {
		sspan.SetInt("anchored", b2i(sa != nil))
		sspan.SetInt("max_depth", int64(copt.MaxDepth))
	}
	copt.Trace = sspan
	var (
		eng     *core.Engine
		best    *analysisCandidate
		stopErr error
	)
	copt.OnSuffix = func(n *core.Node) bool {
		if cerr := ctx.Err(); cerr != nil {
			// Stop the search; the context error is surfaced below.
			stopErr = cerr
			return true
		}
		var cspan *obs.Span
		if sspan != nil {
			cspan = sspan.Child("cause-extraction")
			cspan.SetInt("depth", int64(n.Depth))
		}
		cand := analyzeNode(a.p, eng, n, d)
		if cspan != nil {
			cspan.SetInt("cause_found", b2i(cand != nil))
			if cand != nil {
				cspan.SetInt("faithful", b2i(cand.faithful))
				cspan.SetStr("cause", cand.cause.Kind.String())
			}
			cspan.End()
		}
		if cand == nil {
			return false
		}
		if best == nil || cand.better(best) {
			best = cand
		}
		// Stop as soon as a specific cause is justified by a faithful
		// replay: the suffix is long enough to contain the root cause.
		return cand.faithful && specific(cand.cause)
	}
	eng = core.New(a.p, copt)

	rep, err := eng.AnalyzeContext(ctx, d)
	sspan.End()
	if rep == nil {
		return nil, nil, err
	}
	res := &Result{Report: rep, HardwareSuspect: rep.HardwareSuspect}
	if sa != nil {
		anchor := sa.anchor
		res.CheckpointAnchor = &anchor
	}
	if len(cfg.evidence) > 0 {
		// Provenance: the explicitly supplied evidence sources. The classic
		// WithLBR/WithMatchOutputs hints are deliberately not listed, so
		// reports produced through the legacy options are byte-identical to
		// the pre-evidence engine's.
		res.Evidence = evidence.Set(cfg.evidence).Kinds()
	}
	if best != nil {
		res.Cause = best.cause
		res.CauseDepth = best.node.Depth
		res.Suffix = best.syn.Suffix
		res.Synthesized = best.syn
		res.Replay = best.replay
		if tr, terr := taint.Analyze(a.p, best.syn, d); terr == nil {
			res.Exploitability = tr
		}
	}
	// Partiality is judged by how the search itself ended (engine
	// interruption or the OnSuffix context stop), not by re-polling ctx:
	// a search that ran to completion just before its deadline fired is
	// complete, not partial.
	if err == nil {
		err = stopErr
	}
	res.Partial = err != nil
	return res, best, err
}

// AnalyzeBatch analyzes many dumps of the session's program over a worker
// pool. Results are positional: results[i] is the analysis of dumps[i].
// Each dump is analyzed independently and deterministically, so the
// results are identical to running Analyze sequentially over the slice.
//
// The parallelism contract: any parallelism <= 0 is clamped to
// runtime.GOMAXPROCS(0) — callers can pass 0 (or a config value that was
// never set) and get full-machine parallelism rather than a deadlocked or
// serial batch — and values above len(dumps) are clamped down to it, so
// no idle workers are spawned. An empty dumps slice returns immediately
// with an empty, non-nil result slice and a nil error.
//
// The returned error joins the per-dump errors (nil when every analysis
// succeeded); a canceled context fails the remaining dumps with ctx.Err()
// while results already produced are kept.
//
// While the search parallelism is automatic (unset, or any
// WithSearchParallelism value <= 0), each analysis gets GOMAXPROCS
// divided by the batch's worker count, so batch-level and candidate-level
// parallelism together use the machine once instead of multiplying into
// oversubscription. Results are unaffected either way.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, dumps []*Dump, parallelism int, opts ...Option) ([]*Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(dumps) {
		parallelism = len(dumps)
	}
	cfg := a.base
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.parallelism <= 0 && parallelism > 0 {
		inner := runtime.GOMAXPROCS(0) / parallelism
		if inner < 1 {
			inner = 1
		}
		opts = append(append([]Option(nil), opts...), WithSearchParallelism(inner))
	}
	results := make([]*Result, len(dumps))
	errs := make([]error, len(dumps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = a.Analyze(ctx, dumps[i], opts...)
			}
		}()
	}
	for i := range dumps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("dump %d: %w", i, err)
		}
	}
	return results, errors.Join(errs...)
}

// ClassifyHardware answers the §3.2 question for a dump of the session's
// program: is the dump consistent with any feasible software execution,
// or is it the signature of a hardware error? Cancellation returns the
// zero verdict and ctx.Err(): absence of a suffix is only evidence once
// the search ran to its budgets.
func (a *Analyzer) ClassifyHardware(ctx context.Context, d *Dump, opts ...Option) (HardwareVerdict, error) {
	cfg := a.base
	for _, o := range opts {
		o(&cfg)
	}
	copt, err := cfg.coreOptions(a, d)
	if err != nil {
		return HardwareVerdict{}, err
	}
	return hwerr.ClassifyContext(ctx, a.p, d, copt)
}

type analysisCandidate struct {
	node     *core.Node
	syn      *core.Synthesized
	cause    *Cause
	faithful bool
	replay   *replay.Result
}

// better orders candidates: faithful beats unfaithful, specific beats
// generic, deeper (more context) beats shallower among equals.
func (c *analysisCandidate) better(o *analysisCandidate) bool {
	if c.faithful != o.faithful {
		return c.faithful
	}
	cs, os := specific(c.cause), specific(o.cause)
	if cs != os {
		return cs
	}
	return c.node.Depth > o.node.Depth
}

// b2i lowers a bool to a span attribute value.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// specific reports whether a cause pinpoints something beyond the failure
// site itself (a race, a violated atomicity window, heap corruption).
func specific(c *Cause) bool {
	switch c.Kind {
	case rootcause.DataRace, rootcause.AtomicityViolation,
		rootcause.BufferOverflow, rootcause.UseAfterFree, rootcause.DoubleFree:
		return true
	}
	return false
}

// analyzeNode concretizes, replays and classifies one feasible node.
func analyzeNode(p *Program, eng *core.Engine, n *core.Node, d *Dump) *analysisCandidate {
	syn, err := eng.Concretize(n, d)
	if err != nil {
		return nil
	}
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil || rr.Divergence != nil {
		return nil
	}
	an, err := rootcause.Analyze(p, syn, d)
	if err != nil || an.Cause == nil {
		return nil
	}
	return &analysisCandidate{
		node:     n,
		syn:      syn,
		cause:    an.Cause,
		faithful: rr.Matches && an.Faithful,
		replay:   rr,
	}
}

// Benchmark harness: one benchmark per experiment in EXPERIMENTS.md
// (E1..E9), regenerating every figure/table of the paper's evaluation and
// every quantified claim in its text, plus the engine-scaling benchmarks
// the performance work is held to:
//
//   - BenchmarkDeepSuffix sweeps the depth budget on a long linear
//     reconstruction and reports step-ns/op, the mean cost of one
//     backward step (BackExec + incremental solve + COW clone) over the
//     whole run. With the incremental solver sessions and copy-on-write
//     snapshots this stays ~flat as depth grows (the depth-24 mean within
//     2x of the depth-4 mean); the pre-incremental engine grew it
//     superlinearly because every step re-solved and re-copied the full
//     accumulated history.
//   - BenchmarkParallelSearch runs a wide multi-candidate search at
//     candidate-level parallelism 1 vs 2 vs 4 (res.WithSearchParallelism).
//     Results are bit-identical at any parallelism (see
//     TestSearchEquivalenceParallelVsSequential); only ns/op moves, and
//     the speedup ceiling is the reported cores metric.
//
// Custom metrics carry the series the paper reports:
//
//	attempts/op      backward-step attempts (RES search effort)
//	states/op        forward-synthesis states explored (baseline effort)
//	depth/op         suffix length at which the root cause was found
//	found/op         1 when the analysis succeeded
//	f1/op            pairwise bucketing F1 (triage)
//	detected/op      hardware-error detection rate
//	falsepos/op      false-positive rate
//	step-ns/op       mean wall-clock cost of one backward-step attempt
//
// Run with: go test -bench=. -benchmem
package res_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"res"
	"res/internal/breadcrumb"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/evidence"
	"res/internal/hwerr"
	"res/internal/obs"
	"res/internal/prog"
	"res/internal/rootcause"
	"res/internal/service"
	"res/internal/solver"
	"res/internal/synth"
	"res/internal/taint"
	"res/internal/triage"
	"res/internal/vm"
	"res/internal/workload"
)

// mustFail produces the bug's dump once (outside timed sections).
func mustFail(b *testing.B, bug *workload.Bug, seeds int) *coredump.Dump {
	b.Helper()
	d, _, err := bug.FindFailure(seeds)
	if err != nil {
		b.Fatalf("%s: %v", bug.Name, err)
	}
	return d
}

// BenchmarkE1Figure1 reproduces Figure 1: predecessor disambiguation plus
// root-cause pinpointing for the buffer overflow.
func BenchmarkE1Figure1(b *testing.B) {
	bug := workload.Fig1()
	p := bug.Program()
	d := mustFail(b, bug, 4)
	var attempts, infeasible, correct int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := res.Analyze(p, d, res.Options{MaxDepth: 12})
		if err != nil {
			b.Fatal(err)
		}
		attempts += r.Report.Stats.Attempts
		infeasible += r.Report.Stats.Infeasible
		if r.Cause != nil && r.Cause.Kind == rootcause.BufferOverflow {
			correct++
		}
	}
	b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
	b.ReportMetric(float64(infeasible)/float64(b.N), "infeasible/op")
	b.ReportMetric(float64(correct)/float64(b.N), "correct/op")
}

// BenchmarkE2ConcurrencyBugs reproduces the §4 evaluation: the three
// synthetic concurrency bugs, root cause identified, no false positives,
// well under the paper's one-minute bound (the ns/op column IS the
// time-to-root-cause).
func BenchmarkE2ConcurrencyBugs(b *testing.B) {
	for _, bug := range workload.ConcurrencyBugs() {
		bug := bug
		b.Run(bug.Name, func(b *testing.B) {
			p := bug.Program()
			d := mustFail(b, bug, 50)
			racy, err := p.GlobalAddr(bug.RacyGlobal)
			if err != nil {
				b.Fatal(err)
			}
			var correct, faithful, depth int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := res.Analyze(p, d, res.Options{MaxDepth: 16, MaxNodes: 4000})
				if err != nil {
					b.Fatal(err)
				}
				if r.Cause != nil &&
					(r.Cause.Kind == rootcause.DataRace || r.Cause.Kind == rootcause.AtomicityViolation) &&
					r.Cause.Addr == racy {
					correct++
				}
				if r.Replay != nil && r.Replay.Matches {
					faithful++
				}
				depth += r.CauseDepth
			}
			b.ReportMetric(float64(correct)/float64(b.N), "correct/op")
			b.ReportMetric(float64(faithful)/float64(b.N), "faithful/op")
			b.ReportMetric(float64(depth)/float64(b.N), "depth/op")
		})
	}
}

// BenchmarkE3ArbitraryLength is the headline claim: RES effort is flat in
// execution length, forward synthesis explodes. Sub-benchmarks sweep the
// benign prefix length.
func BenchmarkE3ArbitraryLength(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("res-prefix-%d", n), func(b *testing.B) {
			bug := workload.LongPrefix(n)
			p := bug.Program()
			d := mustFail(b, bug, 2)
			var attempts, found int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := res.Analyze(p, d, res.Options{MaxDepth: 8, MaxNodes: 2000})
				if err != nil {
					b.Fatal(err)
				}
				attempts += r.Report.Stats.Attempts
				if r.Cause != nil {
					found++
				}
			}
			b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
			b.ReportMetric(float64(found)/float64(b.N), "found/op")
			b.ReportMetric(float64(d.Steps), "execblocks")
		})
	}
	for _, n := range []int{30, 100, 300, 1000} {
		n := n
		b.Run(fmt.Sprintf("forward-prefix-%d", n), func(b *testing.B) {
			bug := workload.LongPrefix(n)
			p := bug.Program()
			d := mustFail(b, bug, 2)
			var states, found int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := synth.Synthesize(p, d, synth.Options{MaxStates: 3000, MatchGlobals: false})
				states += r.StatesExplored
				if r.Found {
					found++
				}
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
			b.ReportMetric(float64(found)/float64(b.N), "found/op")
			b.ReportMetric(float64(d.Steps), "execblocks")
		})
	}
}

// BenchmarkE4SuffixDepth sweeps the root-cause distance (§2's enabler and
// §6's limiting factor): effort vs how far the cause sits from the
// failure.
func BenchmarkE4SuffixDepth(b *testing.B) {
	for _, dist := range []int{1, 2, 4, 8, 16, 32} {
		dist := dist
		b.Run(fmt.Sprintf("distance-%d", dist), func(b *testing.B) {
			bug := workload.DistanceChain(dist)
			p := bug.Program()
			d := mustFail(b, bug, 2)
			var attempts, reached int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.New(p, core.Options{MaxDepth: dist + 4, MaxNodes: 10000})
				rep, err := eng.Analyze(d)
				if err != nil {
					b.Fatal(err)
				}
				attempts += rep.Stats.Attempts
				// The root cause (the input write) is reached when the
				// search unwinds to the entry block.
				if rep.FullReconstruction != nil || rep.Stats.MaxDepth >= dist+1 {
					reached++
				}
			}
			b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
			b.ReportMetric(float64(reached)/float64(b.N), "reached/op")
		})
	}
}

// buildTriageCorpus generates the E5 report corpus (outside timing).
func buildTriageCorpus(b *testing.B, perBug int) []triage.Item {
	b.Helper()
	race, direct := workload.SharedSiteCorpus()
	bugs := []*workload.Bug{workload.MultiSiteRace(), race, direct, workload.RaceCounter(), workload.AtomViolation()}
	var corpus []triage.Item
	for _, bug := range bugs {
		p := bug.Program()
		quota := (perBug + len(bug.Configs) - 1) / len(bug.Configs)
		found := 0
		for _, base := range bug.Configs {
			got := 0
			for s := int64(0); s < 300 && got < quota && found < perBug; s++ {
				cfg := base
				cfg.Seed = s
				d, err := res.Run(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if d == nil || d.Fault.Kind == coredump.FaultBudget {
					continue
				}
				if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
					continue
				}
				corpus = append(corpus, triage.Item{Label: bug.Name, App: bug.AppName(), Dump: d, Prog: p})
				found++
				got++
			}
		}
		if found == 0 {
			b.Fatalf("bug %s never manifested", bug.Name)
		}
	}
	return corpus
}

// BenchmarkE5Triage compares WER-style stack bucketing against RES
// root-cause bucketing on the report corpus (§3.1; WER mis-buckets up to
// 37% of reports — here measured as pairwise F1 plus over-splits and
// collisions).
func BenchmarkE5Triage(b *testing.B) {
	corpus := buildTriageCorpus(b, 4)
	rcClassifier := func(it triage.Item) (string, error) {
		r, err := res.Analyze(it.Prog, it.Dump, res.Options{MaxDepth: 14, MaxNodes: 3000})
		if err != nil {
			return "", err
		}
		if r.Cause == nil {
			return "", fmt.Errorf("no cause")
		}
		return it.App + "|" + r.Cause.Key(), nil
	}
	b.Run("wer-stack", func(b *testing.B) {
		var ev triage.Evaluation
		for i := 0; i < b.N; i++ {
			ev = triage.Evaluate(corpus, triage.StackClassifier())
		}
		b.ReportMetric(ev.F1, "f1/op")
		b.ReportMetric(float64(ev.OverSplit), "oversplit/op")
		b.ReportMetric(float64(ev.Collisions), "collisions/op")
		b.ReportMetric(float64(ev.Buckets), "buckets/op")
	})
	b.Run("res-rootcause", func(b *testing.B) {
		var ev triage.Evaluation
		for i := 0; i < b.N; i++ {
			ev = triage.Evaluate(corpus, rcClassifier)
		}
		b.ReportMetric(ev.F1, "f1/op")
		b.ReportMetric(float64(ev.OverSplit), "oversplit/op")
		b.ReportMetric(float64(ev.Collisions), "collisions/op")
		b.ReportMetric(float64(ev.Buckets), "buckets/op")
	})
}

// BenchmarkE6HardwareErrors measures §3.2: detection rate over injected
// memory/register corruption, and the false-positive rate over genuine
// software-bug dumps.
func BenchmarkE6HardwareErrors(b *testing.B) {
	bug := workload.HealthyCompute()
	p := bug.Program()
	clean := mustFail(b, bug, 2)
	g, _ := p.GlobalAddr("g")
	h, _ := p.GlobalAddr("h")

	type caseT struct {
		name string
		dump *coredump.Dump
		want bool // hardware?
	}
	var cases []caseT
	for bit := uint(0); bit < 8; bit++ {
		cd, _ := hwerr.FlipMemoryBit(clean, g, bit)
		cases = append(cases, caseT{fmt.Sprintf("memflip-g-%d", bit), cd, true})
		cd2, _ := hwerr.FlipMemoryBit(clean, h, bit)
		cases = append(cases, caseT{fmt.Sprintf("memflip-h-%d", bit), cd2, true})
	}
	for bit := uint(0); bit < 4; bit++ {
		cd, _, err := hwerr.FlipRegisterBit(clean, clean.Fault.Thread, 3, bit)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, caseT{fmt.Sprintf("regflip-%d", bit), cd, true})
	}
	cases = append(cases, caseT{"genuine-assert", clean, false})
	race := workload.AtomViolation()
	cases = append(cases, caseT{"genuine-race", mustFail(b, race, 50), false})
	progOf := func(name string) *prog.Program {
		if name == "genuine-race" {
			return race.Program()
		}
		return p
	}

	b.ResetTimer()
	var detected, falsePos, total, cleanTotal float64
	for i := 0; i < b.N; i++ {
		detected, falsePos, total, cleanTotal = 0, 0, 0, 0
		for _, c := range cases {
			v, err := hwerr.Classify(progOf(c.name), c.dump, core.Options{MaxDepth: 8, MaxNodes: 2000})
			if err != nil {
				b.Fatal(err)
			}
			if c.want {
				total++
				if v.HardwareSuspect {
					detected++
				}
			} else {
				cleanTotal++
				if v.HardwareSuspect {
					falsePos++
				}
			}
		}
	}
	b.ReportMetric(detected/total, "detected/op")
	b.ReportMetric(falsePos/cleanTotal, "falsepos/op")
	b.ReportMetric(total+cleanTotal, "cases")
}

// BenchmarkE7Breadcrumbs sweeps the LBR ring size and the filtered-LBR
// extension (§2.4): search effort with breadcrumb pruning.
func BenchmarkE7Breadcrumbs(b *testing.B) {
	mkDump := func(size int, skipCond bool) (*prog.Program, *coredump.Dump) {
		bug := workload.AmbiguousDispatch(10)
		p := bug.Program()
		cfg := bug.Configs[0]
		cfg.LBRSize = size
		cfg.LBRSkipConditional = skipCond
		v, err := vm.New(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		d, err := v.Run()
		if err != nil || d == nil {
			b.Fatalf("no dump: %v %v", d, err)
		}
		return p, d
	}
	for _, k := range []int{-1, 4, 8, 16, 32} {
		k := k
		name := fmt.Sprintf("lbr-%d", k)
		if k == -1 {
			name = "no-lbr"
		}
		b.Run(name, func(b *testing.B) {
			p, d := mkDump(k, false)
			opt := core.Options{MaxDepth: 34, MaxNodes: 10000}
			if k > 0 {
				prs, err := evidence.Set{evidence.LBR{Mode: breadcrumb.RecordAll}}.Compile(p, d)
				if err != nil {
					b.Fatal(err)
				}
				opt.Evidence = prs
			}
			var attempts, depth int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.New(p, opt)
				rep, err := eng.Analyze(d)
				if err != nil {
					b.Fatal(err)
				}
				attempts += rep.Stats.Attempts
				depth += rep.Stats.MaxDepth
			}
			b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
			b.ReportMetric(float64(depth)/float64(b.N), "depth/op")
		})
	}
	b.Run("lbr-16-filtered", func(b *testing.B) {
		p, d := mkDump(16, true)
		prs, err := evidence.Set{evidence.LBR{Mode: breadcrumb.SkipConditional}}.Compile(p, d)
		if err != nil {
			b.Fatal(err)
		}
		opt := core.Options{
			MaxDepth: 34, MaxNodes: 10000,
			Evidence: prs,
		}
		var attempts, depth int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := core.New(p, opt)
			rep, err := eng.Analyze(d)
			if err != nil {
				b.Fatal(err)
			}
			attempts += rep.Stats.Attempts
			depth += rep.Stats.MaxDepth
		}
		b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
		b.ReportMetric(float64(depth)/float64(b.N), "depth/op")
	})
}

// BenchmarkE8Exploitability compares the taint-based verdict against the
// !exploitable-style heuristic on crashes with known controllability.
func BenchmarkE8Exploitability(b *testing.B) {
	type caseT struct {
		bug         *workload.Bug
		exploitable bool
	}
	cases := []caseT{
		{workload.TaintedOverflow(), true},
		{workload.UntaintedCrash(), false},
	}
	type prepared struct {
		caseT
		p    *prog.Program
		dump *coredump.Dump
	}
	var prep []prepared
	for _, c := range cases {
		prep = append(prep, prepared{c, c.bug.Program(), mustFail(b, c.bug, 4)})
	}
	b.ResetTimer()
	var taintCorrect, heurCorrect float64
	for i := 0; i < b.N; i++ {
		taintCorrect, heurCorrect = 0, 0
		for _, c := range prep {
			r, err := res.Analyze(c.p, c.dump, res.Options{MaxDepth: 10})
			if err != nil {
				b.Fatal(err)
			}
			tExp := r.Exploitability != nil && r.Exploitability.Exploitable
			if tExp == c.exploitable {
				taintCorrect++
			}
			hExp := triage.HeuristicSeverity(c.p, c.dump) >= triage.SeverityProbable
			if hExp == c.exploitable {
				heurCorrect++
			}
		}
	}
	b.ReportMetric(taintCorrect/float64(len(prep)), "taint-acc/op")
	b.ReportMetric(heurCorrect/float64(len(prep)), "heuristic-acc/op")
}

// BenchmarkE9HashConstruct measures §6: a non-invertible hash between the
// input and the failure. With the input spilled to memory RES re-executes
// the hash concretely and crosses it; without the spill the construct is
// an honest Unknown wall.
func BenchmarkE9HashConstruct(b *testing.B) {
	for _, spill := range []bool{true, false} {
		spill := spill
		name := "spilled-input"
		if !spill {
			name = "no-spill"
		}
		b.Run(name, func(b *testing.B) {
			bug := workload.HashConstruct(spill)
			p := bug.Program()
			d := mustFail(b, bug, 2)
			var crossed, unknowns int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.New(p, core.Options{MaxDepth: 8, Solver: solver.Options{RandomTries: 64}})
				rep, err := eng.Analyze(d)
				if err != nil {
					b.Fatal(err)
				}
				// Crossing the hash means the search unwound past the
				// hash block (depth >= 2 beyond the base case).
				if rep.Stats.MaxDepth >= 2 {
					crossed++
				}
				unknowns += rep.Stats.Unknown
			}
			b.ReportMetric(float64(crossed)/float64(b.N), "crossed/op")
			b.ReportMetric(float64(unknowns)/float64(b.N), "unknown/op")
		})
	}
}

// --- Microbenchmarks of the substrate (the usual library health metrics).

func BenchmarkVMExecution(b *testing.B) {
	bug := workload.LongPrefix(3000)
	p := bug.Program()
	cfg := bug.Configs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := vm.New(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverLinearChain(b *testing.B) {
	bug := workload.DistanceChain(8)
	p := bug.Program()
	d := mustFail(b, bug, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.New(p, core.Options{MaxDepth: 10})
		if _, err := eng.Analyze(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzerReuse quantifies the session-API win: one shared
// Analyzer serving a stream of dumps (the predecessor index and program
// preprocessing amortized across analyses) against constructing a fresh
// Analyzer per dump, the shape the deprecated one-shot API forced.
func BenchmarkAnalyzerReuse(b *testing.B) {
	bug := workload.AmbiguousDispatch(10)
	p := bug.Program()
	dumps := collectDumps(b, bug, 8)
	ctx := context.Background()
	opts := []res.Option{res.WithMaxDepth(12), res.WithMaxNodes(2000)}
	b.Run("shared-analyzer", func(b *testing.B) {
		a := res.NewAnalyzer(p, opts...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range dumps {
				if _, err := a.Analyze(ctx, d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fresh-analyzer-per-dump", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range dumps {
				if _, err := res.NewAnalyzer(p, opts...).Analyze(ctx, d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared-analyzer-batch", func(b *testing.B) {
		a := res.NewAnalyzer(p, opts...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.AnalyzeBatch(ctx, dumps, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceIngest measures the ingestion service's two paths for
// one submitted dump: cold (a fresh analysis through the queue, worker,
// solver, and report pipeline) against cached (the same dump resubmitted
// and answered from the content-addressed store). The cached path is the
// production steady state — a fleet resubmits the same failures far more
// often than it discovers new ones — and must be orders of magnitude
// cheaper than cold analysis.
func BenchmarkServiceIngest(b *testing.B) {
	bug := workload.RaceCounter()
	p := bug.Program()
	d := mustFail(b, bug, 50)
	dumpBytes, err := d.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	cfg := service.Config{
		Analysis:     service.AnalysisConfig{MaxDepth: 14, MaxNodes: 4000},
		ShardWorkers: 1,
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		// One long-lived service; the store is defeated per-iteration by
		// constructing it fresh, which is exactly a first-sight dump.
		for i := 0; i < b.N; i++ {
			svc := service.New(cfg)
			progID, err := svc.RegisterProgram(bug.Name, p)
			if err != nil {
				b.Fatal(err)
			}
			job, err := svc.Submit(progID, dumpBytes)
			if err != nil {
				b.Fatal(err)
			}
			if job, err = svc.Wait(ctx, job.ID); err != nil || job.Status != service.StatusDone {
				b.Fatalf("job = %+v, err = %v", job, err)
			}
			if job.Cached {
				b.Fatal("cold path hit the cache")
			}
			svc.Shutdown(ctx)
		}
	})
	b.Run("cached", func(b *testing.B) {
		svc := service.New(cfg)
		progID, err := svc.RegisterProgram(bug.Name, p)
		if err != nil {
			b.Fatal(err)
		}
		job, err := svc.Submit(progID, dumpBytes)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Wait(ctx, job.ID); err != nil {
			b.Fatal(err)
		}
		defer svc.Shutdown(ctx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := svc.Submit(progID, dumpBytes)
			if err != nil {
				b.Fatal(err)
			}
			if !job.Cached || job.Status != service.StatusDone {
				b.Fatalf("cached path missed: %+v", job)
			}
		}
		b.StopTimer()
		m := svc.Metrics()
		b.ReportMetric(m.CacheHitRate, "hitrate/op")
	})
}

// BenchmarkDeepSuffix is the depth-scalability acceptance gauge: a long
// linear reconstruction (DistanceChain) analyzed under growing depth
// budgets. step-ns/op is the mean cost of one backward-step attempt over
// the run; it must stay ~flat as the suffix deepens — the whole point of
// incremental solver sessions (a child step propagates only its own
// constraints) and copy-on-write snapshots (a child clone records only
// its own deltas).
func BenchmarkDeepSuffix(b *testing.B) {
	bug := workload.DistanceChain(26)
	p := bug.Program()
	d := mustFail(b, bug, 2)
	for _, depth := range []int{4, 8, 16, 24} {
		depth := depth
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			var attempts, reached int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.New(p, core.Options{MaxDepth: depth, MaxNodes: 20000})
				rep, err := eng.Analyze(d)
				if err != nil {
					b.Fatal(err)
				}
				attempts += rep.Stats.Attempts
				reached += rep.Stats.MaxDepth
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(attempts), "step-ns/op")
			b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
			b.ReportMetric(float64(reached)/float64(b.N), "depth/op")
		})
	}
}

// BenchmarkDeepSuffixTraced is BenchmarkDeepSuffix with span tracing
// enabled: the observability layer's overhead gauge. Its step-ns/op is
// directly comparable to the untraced run's — the acceptance bar is
// under 5% between the two (see BENCH.md). spans/op reports how many
// spans one analysis emits, pinning that per-depth instrumentation
// stays O(depth), not O(attempts).
func BenchmarkDeepSuffixTraced(b *testing.B) {
	bug := workload.DistanceChain(26)
	p := bug.Program()
	d := mustFail(b, bug, 2)
	for _, depth := range []int{4, 8, 16, 24} {
		depth := depth
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			var attempts, reached, spans int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := obs.NewTrace("analysis")
				eng := core.New(p, core.Options{MaxDepth: depth, MaxNodes: 20000, Trace: tr.Root()})
				rep, err := eng.Analyze(d)
				if err != nil {
					b.Fatal(err)
				}
				tr.Root().End()
				attempts += rep.Stats.Attempts
				reached += rep.Stats.MaxDepth
				spans += len(tr.Finish().Spans)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(attempts), "step-ns/op")
			b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
			b.ReportMetric(float64(spans)/float64(b.N), "spans/op")
			_ = reached
		})
	}
}

// BenchmarkTraceOverheadPaired is the tracing-overhead measurement the
// observability layer is held to (< 5%). It interleaves an untraced and a
// traced analysis inside every iteration and reports the ratio directly,
// so slow drift on a shared machine (CPU frequency, noisy neighbours) —
// which dominates back-to-back comparisons of BenchmarkDeepSuffix vs
// BenchmarkDeepSuffixTraced — cancels out of the overhead-pct metric.
func BenchmarkTraceOverheadPaired(b *testing.B) {
	bug := workload.DistanceChain(26)
	p := bug.Program()
	d := mustFail(b, bug, 2)
	for _, depth := range []int{4, 8, 16, 24} {
		depth := depth
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			plain := func() int64 {
				t0 := time.Now()
				eng := core.New(p, core.Options{MaxDepth: depth, MaxNodes: 20000})
				if _, err := eng.Analyze(d); err != nil {
					b.Fatal(err)
				}
				return time.Since(t0).Nanoseconds()
			}
			traced := func() int64 {
				t0 := time.Now()
				tr := obs.NewTrace("analysis")
				eng := core.New(p, core.Options{MaxDepth: depth, MaxNodes: 20000, Trace: tr.Root()})
				if _, err := eng.Analyze(d); err != nil {
					b.Fatal(err)
				}
				tr.Root().End()
				if got := len(tr.Finish().Spans); got < 2 {
					b.Fatalf("traced run produced %d spans", got)
				}
				return time.Since(t0).Nanoseconds()
			}
			var plainNS, tracedNS int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate which variant runs first so GC and cache
				// state inherited from the previous run cancel out.
				if i%2 == 0 {
					plainNS += plain()
					tracedNS += traced()
				} else {
					tracedNS += traced()
					plainNS += plain()
				}
			}
			b.ReportMetric(float64(plainNS)/float64(b.N), "plain-ns/op")
			b.ReportMetric(float64(tracedNS)/float64(b.N), "traced-ns/op")
			b.ReportMetric((float64(tracedNS)/float64(plainNS)-1)*100, "overhead-pct")
		})
	}
	// The sweep sub-benchmark runs the whole depth schedule per
	// iteration and reports the overall traced/untraced ratio — the
	// headline "tracing costs N% of BenchmarkDeepSuffix" number, with
	// each depth weighted by how long it actually takes.
	b.Run("sweep", func(b *testing.B) {
		depths := []int{4, 8, 16, 24}
		sweep := func(trace bool) int64 {
			t0 := time.Now()
			for _, depth := range depths {
				opt := core.Options{MaxDepth: depth, MaxNodes: 20000}
				var tr *obs.Trace
				if trace {
					tr = obs.NewTrace("analysis")
					opt.Trace = tr.Root()
				}
				eng := core.New(p, opt)
				if _, err := eng.Analyze(d); err != nil {
					b.Fatal(err)
				}
				if trace {
					tr.Root().End()
					if got := len(tr.Finish().Spans); got < 2 {
						b.Fatalf("traced run produced %d spans", got)
					}
				}
			}
			return time.Since(t0).Nanoseconds()
		}
		var plainNS, tracedNS int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				plainNS += sweep(false)
				tracedNS += sweep(true)
			} else {
				tracedNS += sweep(true)
				plainNS += sweep(false)
			}
		}
		b.ReportMetric(float64(plainNS)/float64(b.N), "plain-ns/op")
		b.ReportMetric(float64(tracedNS)/float64(b.N), "traced-ns/op")
		b.ReportMetric((float64(tracedNS)/float64(plainNS)-1)*100, "overhead-pct")
	})
}

// BenchmarkParallelSearch measures the candidate-level worker pool on a
// wide search (AmbiguousDispatch fans many feasible predecessors per
// depth). The engines produce bit-identical reports; parallelism only
// divides the wall clock, and the achievable speedup is bounded by the
// cores metric (GOMAXPROCS) — on a single-core machine the sub-benchmarks
// coincide and the pool only proves it costs ~nothing.
func BenchmarkParallelSearch(b *testing.B) {
	bug := workload.AmbiguousDispatch(10)
	p := bug.Program()
	d := mustFail(b, bug, 4)
	ctx := context.Background()
	for _, par := range []int{1, 2, 4} {
		par := par
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			a := res.NewAnalyzer(p,
				res.WithMaxDepth(24), res.WithMaxNodes(6000),
				res.WithSearchParallelism(par))
			var attempts int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := a.Analyze(ctx, d)
				if err != nil {
					b.Fatal(err)
				}
				attempts += r.Report.Stats.Attempts
			}
			b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
		})
	}
}

func BenchmarkDumpSerialization(b *testing.B) {
	bug := workload.Fig1()
	d := mustFail(b, bug, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := d.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := coredump.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaintAnalysis(b *testing.B) {
	bug := workload.TaintedOverflow()
	p := bug.Program()
	d := mustFail(b, bug, 4)
	eng := core.New(p, core.Options{MaxDepth: 10})
	rep, err := eng.Analyze(d)
	if err != nil || len(rep.Suffixes) == 0 {
		b.Fatalf("setup: %v", err)
	}
	syn, err := eng.Concretize(rep.Suffixes[len(rep.Suffixes)-1], d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taint.Analyze(p, syn, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointLongExecution is the checkpoint-ring acceptance
// gauge (BENCH_pr6): a failure whose root cause sits at the start of the
// execution, swept from 1k to 100k total steps. The full-depth baseline
// must unwind the whole execution to reconstruct it — wall clock linear
// in execution length — while the checkpointed analysis anchors at the
// latest verified checkpoint and unwinds at most one checkpoint interval
// regardless of length. Both reach the identical root-cause key
// (asserted in TestCheckpointLongExecutionAcceptance); here only the
// cost moves. depth/op is the deepest suffix explored, the quantity the
// ring bounds.
//
// The anchored sweep runs to 100k steps; the full-depth baseline is
// truncated at 3k because its cost grows superlinearly with the unwind
// depth (~8s at 1k, ~250s at 3k on the reference box) and any later
// point alone would dominate the whole suite. The trend is established
// on the overlapping range, where the anchored analysis is already
// ~50x cheaper at 1k and ~800x at 3k — and the anchored curve keeps
// going to 100k while the baseline cannot.
func BenchmarkCheckpointLongExecution(b *testing.B) {
	prep := func(n int) (*prog.Program, *coredump.Dump, *res.CheckpointRing) {
		bug := workload.DistanceChain(n)
		d, ring, _, err := bug.FindFailureCheckpointed(4, res.CheckpointConfig{Every: 64, Cap: 256})
		if err != nil {
			b.Fatalf("%s: %v", bug.Name, err)
		}
		return bug.Program(), d, ring
	}
	for _, n := range []int{1000, 3000, 10000, 30000, 100000} {
		n := n
		b.Run(fmt.Sprintf("anchored-%d", n), func(b *testing.B) {
			p, d, ring := prep(n)
			a := res.NewAnalyzer(p, res.WithMaxNodes(20000), res.WithCheckpoints(ring))
			ctx := context.Background()
			var depth, found int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := a.Analyze(ctx, d)
				if err != nil {
					b.Fatal(err)
				}
				depth += r.Report.Stats.MaxDepth
				if r.Cause != nil && r.CheckpointAnchor != nil {
					found++
				}
			}
			b.ReportMetric(float64(depth)/float64(b.N), "depth/op")
			b.ReportMetric(float64(found)/float64(b.N), "found/op")
			b.ReportMetric(float64(ring.Interval), "interval")
			b.ReportMetric(float64(d.Steps), "execblocks")
		})
	}
	for _, n := range []int{1000, 3000} {
		n := n
		b.Run(fmt.Sprintf("full-depth-%d", n), func(b *testing.B) {
			p, d, _ := prep(n)
			a := res.NewAnalyzer(p, res.WithMaxDepth(n+4), res.WithMaxNodes(2*n+20000))
			ctx := context.Background()
			var depth, found int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := a.Analyze(ctx, d)
				if err != nil {
					b.Fatal(err)
				}
				depth += r.Report.Stats.MaxDepth
				if r.Cause != nil {
					found++
				}
			}
			b.ReportMetric(float64(depth)/float64(b.N), "depth/op")
			b.ReportMetric(float64(found)/float64(b.N), "found/op")
			b.ReportMetric(float64(d.Steps), "execblocks")
		})
	}
}

// BenchmarkAblationForcedBindings quantifies the design choice DESIGN.md
// calls out: the register-only pre-pass whose forced (logically implied)
// bindings resolve stack-relative addresses during backward execution.
// Without it, call/return unwinding degrades to Unknown and the search
// cannot cross function boundaries.
func BenchmarkAblationForcedBindings(b *testing.B) {
	src := `
.global g 1
func main:
    const r0, 6
    call work
    storeg r0, &g
    loadg r1, &g
    addi r2, r1, -21
    assert r2
    halt
func work:
    addi sp, sp, -1
    store sp, r0, 0
    load r3, sp, 0
    addi sp, sp, 1
    mul r0, r3, r0
    addi r0, r0, -15
    ret
`
	p, err := res.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	d, err := res.Run(p, res.RunConfig{})
	if err != nil || d == nil {
		b.Fatalf("setup: %v %v", d, err)
	}
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "with-probe"
		if disable {
			name = "no-probe"
		}
		b.Run(name, func(b *testing.B) {
			var unknowns, depth int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.New(p, core.Options{MaxDepth: 12, DisableProbe: disable})
				rep, err := eng.Analyze(d)
				if err != nil {
					b.Fatal(err)
				}
				unknowns += rep.Stats.Unknown
				depth += rep.Stats.MaxDepth
			}
			b.ReportMetric(float64(unknowns)/float64(b.N), "unknown/op")
			b.ReportMetric(float64(depth)/float64(b.N), "depth/op")
		})
	}
}

// BenchmarkMinimize measures the delta-debugging loop that shrinks a
// recorded failure's redundant evidence set to a 1-minimal repro (the
// closing-the-loop subsystem). ns/op is dominated by the analyzer
// re-runs ddmin schedules, so the series to watch is analyzer-runs/op
// (how many re-analyses one minimization costs) and reductions/op (how
// much of the attachment set it sheds); the cause key is asserted
// byte-identical every iteration, so the benchmark doubles as a
// soundness check under -benchtime stress.
func BenchmarkMinimize(b *testing.B) {
	bug := workload.RaceCounter()
	p := bug.Program()
	d, set, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{EventEvery: 3, EventWindow: 64, BranchWindow: 64})
	if err != nil {
		b.Fatalf("%s: %v", bug.Name, err)
	}
	srcs := append([]res.EvidenceSource{}, set...)
	srcs = append(srcs, res.EvidenceLBR(res.LBRRecordAll), res.EvidenceOutputLog())
	opts := []res.Option{res.WithMaxDepth(10), res.WithMaxNodes(2500), res.WithEvidence(srcs...)}
	ctx := context.Background()
	base, err := res.NewAnalyzer(p).Analyze(ctx, d, opts...)
	if err != nil || base.Cause == nil {
		b.Fatalf("baseline analysis: %v (cause %v)", err, base)
	}
	key := base.Cause.Key()

	var runs, reductions, kept int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := res.Minimize(ctx, p, d, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if m.CauseKey != key {
			b.Fatalf("minimized cause key %q != baseline %q", m.CauseKey, key)
		}
		runs += m.Runs
		reductions += m.Reductions
		kept += m.MinSources
	}
	b.ReportMetric(float64(runs)/float64(b.N), "analyzer-runs/op")
	b.ReportMetric(float64(reductions)/float64(b.N), "reductions/op")
	b.ReportMetric(float64(kept)/float64(b.N), "sources-kept/op")
}

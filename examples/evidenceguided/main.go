// Evidence-guided analysis: production hints rescue a search that a
// node budget alone cannot finish.
//
// The program loses an update in a two-thread race on a shared counter,
// then runs a long input-driven dispatch tail before an assert finally
// trips on the stale value. Walking backward from the crash, every
// dispatch round doubles the frontier (both handlers are feasible), so
// a budgeted no-evidence search drowns in shallow interleavings and
// never reaches the racy window — it can only report the generic
// assertion failure. Production, however, had cheap hints to spare: a
// sparse sampled event log (every third block start, with gaps). Each
// timestamped record pins one suffix depth to its (thread, block) step,
// collapsing the dispatch ambiguity, and the same budget now carries
// the search all the way back to the lost update.
//
// Run with: go run ./examples/evidenceguided
package main

import (
	"context"
	"fmt"
	"log"

	"res"
)

const program = `
; lost-update race; the counter is read once right after the handshake,
; then a long input-ambiguous tail runs before the assert fires
.global c 1
.global done 1
.global m 1
func main:
    const r1, 0
    spawn worker, r1
    loadg r3, &c
    yield
    addi r3, r3, 1
    storeg r3, &c
m_wait:
    const r8, &m
    lock r8
    loadg r4, &done
    unlock r8
    br r4, grab, m_wait
grab:
    loadg r5, &c
    const r1, 6
loop:
    input r2, 0
    andi r3, r2, 1
    br r3, ha, hb
ha:
    addi r6, r6, 1
    jmp join
hb:
    addi r6, r6, 2
    jmp join
join:
    addi r1, r1, -1
    br r1, loop, check
check:
    const r6, 2
    cmpeq r7, r5, r6
    assert r7
    halt
func worker:
    loadg r3, &c
    yield
    addi r3, r3, 1
    storeg r3, &c
    const r8, &m
    lock r8
    const r4, 1
    storeg r4, &done
    unlock r8
    halt
`

func main() {
	p, err := res.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Production mode, with the cheap evidence recorder attached: a
	// sampled event log and a conditional-branch trace window. The
	// recorder only observes — the dump is byte-identical to a run
	// without it. One fresh recorder per attempt: its block-step
	// timestamps must count the failing run alone.
	rcfg := res.EvidenceRecordConfig{
		EventEvery:   3,
		EventWindow:  64,
		BranchWindow: 64,
	}
	cfg := res.RunConfig{
		PreemptPct: 60,
		Inputs:     map[int64][]int64{0: {0, 1, 1, 0, 2, 1, 0, 1}},
		MaxSteps:   10000,
	}
	var (
		dump *res.Dump
		set  res.EvidenceSet
	)
	for seed := int64(1); seed < 100 && dump == nil; seed++ {
		rec := res.NewEvidenceRecorder(p, rcfg)
		cfg.Seed = seed
		cfg.Hooks = rec.Hooks()
		if dump, err = res.Run(p, cfg); err != nil {
			log.Fatal(err)
		}
		set = rec.Evidence()
	}
	if dump == nil {
		log.Fatal("the race never manifested")
	}
	fmt.Printf("production failure: %s after %d blocks\n", dump.Fault, dump.Steps)
	fmt.Printf("evidence collected for free: %v\n\n", set.Kinds())

	const budget = 800
	a := res.NewAnalyzer(p, res.WithMaxDepth(40), res.WithMaxNodes(budget))
	ctx := context.Background()

	// Attempt 1: the dump alone. The dispatch tail's frontier doubles
	// at every backward round, so the budget dies at shallow depth.
	plain, err := a.Analyze(ctx, dump)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without evidence (budget %d attempts):\n", budget)
	fmt.Printf("  %s\n", plain.Describe())
	fmt.Printf("  deepest suffix reached: %d blocks — the racy window is far beyond it\n\n",
		plain.Report.Stats.MaxDepth)

	// Attempt 2: same dump, same budget, plus the sparse event log.
	guided, err := a.Analyze(ctx, dump, res.WithEvidence(set...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with the sampled event log (same budget):\n")
	fmt.Printf("  %s\n", guided.Describe())
	fmt.Printf("  search effort: %d attempts vs %d without evidence\n",
		guided.Report.Stats.Attempts, plain.Report.Stats.Attempts)
	if guided.Cause == nil {
		log.Fatal("expected the evidence-guided search to identify the root cause")
	}
	fmt.Printf("\nthe suffix (%d blocks) reaches the lost update; replay pinpoints it:\n", guided.CauseDepth)
	fmt.Printf("  %v\n", guided.Suffix)
}

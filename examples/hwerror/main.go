// Hardware-error identification (§3.2): take a genuine software failure's
// coredump, inject a DRAM bit flip, and show that RES proves the corrupted
// dump inconsistent — the program writes 42 into that word on every path
// to the failure, so a dump holding anything else cannot come from a
// software execution.
//
// Run with: go run ./examples/hwerror
package main

import (
	"context"
	"fmt"
	"log"

	"res"
	"res/internal/hwerr"
	"res/internal/workload"
)

func main() {
	fmt.Println("=== Hardware error or software bug? ===")
	bug := workload.HealthyCompute()
	p := bug.Program()
	dump, _, err := bug.FindFailure(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software failure: %s\n\n", dump.Fault)
	ctx := context.Background()

	// One analysis session per program; classification shares the
	// session's precomputed CFG indexes with ordinary analyses.
	session := res.NewAnalyzer(p, res.WithMaxDepth(8))

	// Control: the genuine dump is consistent.
	v, err := session.ClassifyHardware(ctx, dump)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genuine dump      -> hardware suspect: %v (correct: it is a software bug)\n", v.HardwareSuspect)

	// Inject a single bit flip into a word the failing suffix provably
	// wrote (g = 6*7 just before the assert).
	g, _ := p.GlobalAddr("g")
	corrupted, inj := hwerr.FlipMemoryBit(dump, g, 3)
	fmt.Printf("\ninjecting: %v (g: %d -> %d)\n", inj, dump.Mem.Load(g), corrupted.Mem.Load(g))

	v, err = session.ClassifyHardware(ctx, corrupted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrupted dump    -> hardware suspect: %v\n", v.HardwareSuspect)
	fmt.Println("\nRES reasoning: every feasible suffix executes 'mul r3, r1, r2' with")
	fmt.Println("6 and 7 and stores 42 into g; the dump disagrees, so no software")
	fmt.Println("execution produced it — the paper's memory-error example, automated.")

	// A register flip (CPU miscompute) is caught the same way.
	corrupted2, inj2, err := hwerr.FlipRegisterBit(dump, dump.Fault.Thread, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	v, err = session.ClassifyHardware(ctx, corrupted2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v -> hardware suspect: %v\n", inj2, v.HardwareSuspect)

	// And RES never cries wolf on real software bugs.
	raceBug := workload.AtomViolation()
	raceDump, _, err := raceBug.FindFailure(50)
	if err != nil {
		log.Fatal(err)
	}
	raceSession := res.NewAnalyzer(raceBug.Program(), res.WithMaxDepth(8), res.WithMaxNodes(2000))
	v, err = raceSession.ClassifyHardware(ctx, raceDump)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcurrency-bug dump -> hardware suspect: %v (zero false positives)\n", v.HardwareSuspect)
}

// Hardware-error identification (§3.2): take a genuine software failure's
// coredump, inject a DRAM bit flip, and show that RES proves the corrupted
// dump inconsistent — the program writes 42 into that word on every path
// to the failure, so a dump holding anything else cannot come from a
// software execution.
//
// Run with: go run ./examples/hwerror
package main

import (
	"fmt"
	"log"

	"res/internal/core"
	"res/internal/hwerr"
	"res/internal/workload"
)

func main() {
	fmt.Println("=== Hardware error or software bug? ===")
	bug := workload.HealthyCompute()
	p := bug.Program()
	dump, _, err := bug.FindFailure(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software failure: %s\n\n", dump.Fault)

	// Control: the genuine dump is consistent.
	v, err := hwerr.Classify(p, dump, core.Options{MaxDepth: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genuine dump      -> hardware suspect: %v (correct: it is a software bug)\n", v.HardwareSuspect)

	// Inject a single bit flip into a word the failing suffix provably
	// wrote (g = 6*7 just before the assert).
	g, _ := p.GlobalAddr("g")
	corrupted, inj := hwerr.FlipMemoryBit(dump, g, 3)
	fmt.Printf("\ninjecting: %v (g: %d -> %d)\n", inj, dump.Mem.Load(g), corrupted.Mem.Load(g))

	v, err = hwerr.Classify(p, corrupted, core.Options{MaxDepth: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrupted dump    -> hardware suspect: %v\n", v.HardwareSuspect)
	fmt.Println("\nRES reasoning: every feasible suffix executes 'mul r3, r1, r2' with")
	fmt.Println("6 and 7 and stores 42 into g; the dump disagrees, so no software")
	fmt.Println("execution produced it — the paper's memory-error example, automated.")

	// A register flip (CPU miscompute) is caught the same way.
	corrupted2, inj2, err := hwerr.FlipRegisterBit(dump, dump.Fault.Thread, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	v, err = hwerr.Classify(p, corrupted2, core.Options{MaxDepth: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v -> hardware suspect: %v\n", inj2, v.HardwareSuspect)

	// And RES never cries wolf on real software bugs.
	raceBug := workload.AtomViolation()
	raceDump, _, err := raceBug.FindFailure(50)
	if err != nil {
		log.Fatal(err)
	}
	v, err = hwerr.Classify(raceBug.Program(), raceDump, core.Options{MaxDepth: 8, MaxNodes: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcurrency-bug dump -> hardware suspect: %v (zero false positives)\n", v.HardwareSuspect)
}

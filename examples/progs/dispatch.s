; Eight dispatch rounds with state-indistinguishable handlers: walking
; backward, both handlers are feasible at every round, so the frontier
; doubles per depth. Production evidence (a sampled event log or a
; branch-trace window) pins the real path and prunes the search.
; Crash it with:
;   resrun -prog dispatch.s -lbr 64 -input 0=0,1,2,0,1,2,0,1 \
;          -record-evidence -evidence-sample 3 -o crash.dump
.global cnt 1
func main:
    const r1, 8
loop:
    input r2, 0
    andi r3, r2, 1
    br r3, ha, hb
ha:
    loadg r4, &cnt
    addi r4, r4, 1
    storeg r4, &cnt
    jmp join
hb:
    loadg r4, &cnt
    addi r4, r4, 1
    storeg r4, &cnt
    jmp join
join:
    addi r1, r1, -1
    br r1, loop, bug
bug:
    const r5, 0
    assert r5
    halt

; A failure tens of thousands of blocks into the run: the poisoned input
; is read and stored once at the start, then a counting loop spins ~50k
; blocks before the assert trips over the long-dead value. Without
; checkpoints, reconstructing the root cause means unwinding the whole
; loop; a checkpoint ring recorded with
;   resrun -prog longloop.s -input 0=0 -record-checkpoints -o crash.dump
; anchors the analysis at the last verified checkpoint, bounding the
; suffix depth by the checkpoint interval instead of the run length.
.global bad 1
.global cnt 1
func main:
    input r1, 0
    storeg r1, &bad
    const r2, 50000
loop:
    loadg r3, &cnt
    addi r3, r3, 1
    storeg r3, &cnt
    addi r2, r2, -1
    br r2, loop, done
done:
    loadg r4, &bad
    assert r4
    halt

; A deterministic failing program for service quickstarts and the CI
; smoke test: main computes g*g into h and asserts it equals 9... which
; it does not survive, because the assert checks h-9 is nonzero. Every
; run crashes at the same place, so `resrun` always produces a dump and
; `res -submit` always has something to analyze.
.global g 1
.global h 1
func main:
    const r0, 3
    storeg r0, &g
    loadg r1, &g
    mul r2, r1, r1
    storeg r2, &h
    loadg r3, &h
    addi r4, r3, -9
    assert r4
    halt

// Quickstart: the paper's workflow end to end on a small program.
//
//  1. Run a program in production mode — no recording.
//  2. It crashes; all we keep is the coredump.
//  3. RES reconstructs an execution suffix from the dump alone.
//  4. The suffix replays deterministically and names the root cause.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"res"
)

const program = `
; A tiny service: reads a request size, derives a buffer length, and
; checks an invariant that the request can violate.
.global length 1
func main:
    input r1, 0          ; request size from the network
    muli r2, r1, 2
    addi r2, r2, 4
    storeg r2, &length
    loadg r3, &length
    addi r4, r3, -18     ; invariant: length must never be 18
    assert r4
    halt
`

func main() {
	p, err := res.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Production run: request size 7 makes length = 18 and trips the
	// invariant. Nothing about the run is recorded.
	dump, err := res.Run(p, res.RunConfig{Inputs: map[int64][]int64{0: {7}}})
	if err != nil {
		log.Fatal(err)
	}
	if dump == nil {
		log.Fatal("expected the run to fail")
	}
	fmt.Printf("production failure: %s\n", dump.Fault)
	fmt.Printf("the only artifact: a coredump (%d words of memory, %d thread(s))\n\n",
		dump.Mem.Size(), len(dump.Threads))

	// Post-mortem analysis: open an analysis session for the program.
	// The session precomputes the backward-CFG index, is safe for
	// concurrent use, and serves every dump this program ever produces.
	analyzer := res.NewAnalyzer(p,
		res.WithObserver(func(ev res.Event) {
			if ev.Kind == res.EventSuffix {
				fmt.Printf("  [progress] feasible suffix at depth %d (%d attempts so far)\n",
					ev.Depth, ev.Stats.Attempts)
			}
		}))

	// Analyses are deadline-bounded: a production triage pipeline never
	// hangs on one dump. (This tiny analysis finishes well within it.)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r, err := analyzer.Analyze(ctx, dump)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Describe())
	fmt.Printf("\nsynthesized suffix: %s\n", r.Suffix)
	fmt.Printf("synthesized inputs: %v  (RES recovered the crashing request!)\n", r.Suffix.Inputs)
	fmt.Printf("recently read state: %v, recently written: %v\n",
		r.Synthesized.ReadSet, r.Synthesized.WriteSet)
	if r.Replay != nil && r.Replay.Matches {
		fmt.Println("\nreplaying the suffix reproduces the exact coredump, deterministically.")
	}

	// The same result renders as a deterministic JSON artifact for
	// machines (triage pipelines, dashboards, agents).
	buf, err := r.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmachine-readable report:\n%s\n", buf)
}

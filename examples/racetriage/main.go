// Race triage: the §3.1 story. A corpus of crash reports arrives from the
// field. WER-style bucketing (fault + call stack) splits one race bug
// across buckets (its crash site depends on scheduling and inputs) and
// merges two different bugs that crash at the same site. RES buckets by
// root cause and gets both right.
//
// Run with: go run ./examples/racetriage
package main

import (
	"context"
	"fmt"
	"log"

	"res"
	"res/internal/coredump"
	"res/internal/triage"
	"res/internal/workload"
)

func main() {
	fmt.Println("=== Bug-report triage: stacks vs root causes ===")
	race, direct := workload.SharedSiteCorpus()
	bugs := []*workload.Bug{workload.MultiSiteRace(), race, direct}

	var corpus []triage.Item
	for _, bug := range bugs {
		p := bug.Program()
		per := 3
		quota := (per + len(bug.Configs) - 1) / len(bug.Configs)
		found := 0
		for _, base := range bug.Configs {
			got := 0
			for s := int64(0); s < 300 && got < quota && found < per; s++ {
				cfg := base
				cfg.Seed = s
				d, err := res.Run(p, cfg)
				if err != nil {
					log.Fatal(err)
				}
				if d == nil || d.Fault.Kind == coredump.FaultBudget {
					continue
				}
				if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
					continue
				}
				corpus = append(corpus, triage.Item{Label: bug.Name, App: bug.AppName(), Dump: d, Prog: p})
				found++
				got++
			}
		}
		fmt.Printf("collected %d reports for %s\n", found, bug.Name)
	}

	// One analysis session per program, the whole corpus fanned out over
	// AnalyzeBatch's worker pool — this is the production triage shape:
	// a session outlives any single report, and reports arrive in bulk.
	keys := make(map[*coredump.Dump]string, len(corpus))
	byProg := make(map[*res.Program][]*coredump.Dump)
	for _, it := range corpus {
		byProg[it.Prog] = append(byProg[it.Prog], it.Dump)
	}
	appOf := make(map[*coredump.Dump]string, len(corpus))
	for _, it := range corpus {
		appOf[it.Dump] = it.App
	}
	for p, dumps := range byProg {
		session := res.NewAnalyzer(p, res.WithMaxDepth(14))
		results, err := session.AnalyzeBatch(context.Background(), dumps, 4)
		if err != nil {
			// Per-dump failures are tolerable: the triage evaluation scores
			// unclassifiable reports as errors rather than aborting.
			log.Printf("batch: %v", err)
		}
		for i, r := range results {
			if r == nil || r.Cause == nil {
				continue
			}
			keys[dumps[i]] = appOf[dumps[i]] + "|" + r.Cause.Key()
		}
	}

	wer := triage.StackClassifier()
	rc := func(it triage.Item) (string, error) {
		k, ok := keys[it.Dump]
		if !ok {
			return "", fmt.Errorf("no cause")
		}
		return k, nil
	}

	fmt.Println("\nWER-style buckets (fault kind + call stack):")
	fmt.Print(triage.BucketSummary(corpus, wer))
	fmt.Printf("score: %v\n", triage.Evaluate(corpus, wer))

	fmt.Println("\nRES buckets (root cause):")
	fmt.Print(triage.BucketSummary(corpus, rc))
	fmt.Printf("score: %v\n", triage.Evaluate(corpus, rc))
}

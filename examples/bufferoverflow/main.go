// Figure 1 walkthrough: a heap buffer overflow whose crash happens later,
// through a corrupted pointer. RES starts from the coredump (x == 1,
// y == 10), discards the predecessor path that could not have produced
// that state, and the checked replay of the synthesized suffix pinpoints
// the overflowing store — not the crash site — as the root cause.
//
// Run with: go run ./examples/bufferoverflow
package main

import (
	"context"
	"fmt"
	"log"

	"res"
	"res/internal/core"
	"res/internal/rootcause"
	"res/internal/workload"
)

func main() {
	bug := workload.Fig1()
	p := bug.Program()

	dump, _, err := bug.FindFailure(4)
	if err != nil {
		log.Fatal(err)
	}
	x, _ := p.GlobalAddr("x")
	y, _ := p.GlobalAddr("y")
	fmt.Println("=== Figure 1: buffer overflow at a distance ===")
	fmt.Printf("crash:     %s\n", dump.Fault)
	fmt.Printf("coredump:  x = %d, y = %d   (the paper's running example state)\n\n",
		dump.Mem.Load(x), dump.Mem.Load(y))

	analyzer := res.NewAnalyzer(p, res.WithMaxDepth(12))
	r, err := analyzer.Analyze(context.Background(), dump)
	if err != nil {
		log.Fatal(err)
	}

	// An exhaustive search (no early stop) shows the disambiguation work.
	eng := core.New(p, core.Options{MaxDepth: 12})
	full, err := eng.Analyze(dump)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RES navigates the CFG backward from the crash. The join block has")
	fmt.Println("two predecessors: Pred1 overflows buffer[y] and sets x=1; Pred2 just")
	fmt.Println("sets x=2. Since the dump says x == 1, only Pred1 survives the")
	fmt.Println("symbolic-snapshot compatibility check:")
	fmt.Printf("  candidates tried: %d, proven infeasible: %d (the Pred2 hypothesis)\n\n",
		full.Stats.Attempts, full.Stats.Infeasible)

	fmt.Printf("root cause: %s\n", r.Cause)
	if r.Cause.Kind == rootcause.BufferOverflow {
		pc := r.Cause.PCs[0]
		fmt.Printf("  pc %d is %q — the overflow store, found by replaying the\n", pc, p.Code[pc].String())
		fmt.Println("  suffix with allocator checking on; in production the store was")
		fmt.Println("  silent and the crash surfaced three blocks later.")
	}
	fmt.Printf("\nsuffix (%d blocks): %v\n", r.Suffix.Len(), r.Suffix)
}

// Closing the loop: analyze a failure, delta-debug it into a minimal
// repro, and verify candidate fixes against the reproduced suffix. The
// analyzer's answer is not a report to read but an artifact to compute
// with: the minimal repro re-analyzes to the byte-identical root-cause
// key with a fraction of the evidence, and a patch is judged by whether
// the failure can still fire in the replayed window — a broken candidate
// comes back not-fixed, the real fix comes back fixed.
//
// Run with: go run ./examples/fixloop
package main

import (
	"context"
	"fmt"
	"log"

	"res"
	"res/internal/evidence"
	"res/internal/workload"
)

// The candidate fixes, both patching the same labeled region of the
// atom-violation workload's source. Patches are keyed by assembler
// label: replace/insert/delete <label> ... end.
const (
	brokenPatch = `replace check
    loadg r2, &x
    const r3, 3
    cmpeq r4, r2, r3
end
`
	goodPatch = `replace check
    loadg r2, &x
    const r3, 5
    cmpeq r4, r2, r3
end
`
)

// buggySrc is a deterministic distillation of a stale-check bug: the
// check region asserts a value the program no longer stores.
const buggySrc = `
.global x 1
func main:
    const r1, 5
    storeg r1, &x
check:
    loadg r2, &x
    const r3, 4
    cmpeq r4, r2, r3
site:
    assert r4
    halt
`

func main() {
	ctx := context.Background()
	fmt.Println("=== Closing the loop: repro minimization + fix verification ===")

	// --- 1. Minimize: a recorded failure with a redundant evidence set.
	bug := workload.RaceCounter()
	p := bug.Program()
	d, set, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{
		EventEvery: 3, EventWindow: 64, BranchWindow: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	srcs := append([]res.EvidenceSource{}, set...)
	srcs = append(srcs, res.EvidenceLBR(res.LBRRecordAll), res.EvidenceOutputLog())
	opts := []res.Option{res.WithMaxDepth(10), res.WithMaxNodes(2500), res.WithEvidence(srcs...)}

	base, err := res.NewAnalyzer(p).Analyze(ctx, d, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalysis:  %s\n", base.Cause)
	fmt.Printf("evidence:  %d sources attached (deliberately redundant)\n", len(srcs))

	m, err := res.Minimize(ctx, p, d, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimized: %s\n", res.DescribeMinimalRepro(m))
	fmt.Printf("           %d analyzer runs, %d reductions, cause key unchanged (%s)\n",
		m.Runs, m.Reductions, m.CauseKey)
	wire := m.Encode()
	fmt.Printf("           wire form: %d bytes, fingerprint %s\n", len(wire), m.Fingerprint()[:16])

	// --- 2. Verify: replay the reproduced suffix through candidate fixes.
	bp := res.MustAssemble(buggySrc)
	bd, err := res.Run(bp, res.RunConfig{MaxSteps: 10000})
	if err != nil {
		log.Fatal(err)
	}
	br, err := res.NewAnalyzer(bp).Analyze(ctx, bd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond bug: %s (cause %s)\n", bd.Fault, br.Cause)

	for _, cand := range []struct{ name, text string }{
		{"broken candidate (compares against 3)", brokenPatch},
		{"real fix (compares against 5)", goodPatch},
	} {
		patch, err := res.ParsePatch(cand.text)
		if err != nil {
			log.Fatal(err)
		}
		v, err := res.VerifyFix(buggySrc, patch, br, bd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", cand.name)
		fmt.Printf("  patch:   %s\n", patch.Fingerprint()[:16])
		fmt.Printf("  verdict: %s — %s\n", v.Verdict, v.Reason)
		if v.Residual != "" {
			fmt.Printf("  residual constraint %s satisfiable: %v\n", v.Residual, v.ResidualSat)
		}
	}
	fmt.Println("\nThe loop closes: record once, minimize the repro, iterate on the")
	fmt.Println("fix against the same reproduced window until the verdict is fixed.")
}

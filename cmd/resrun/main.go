// Command resrun executes a RES-VM assembly program in production mode and
// writes a coredump when it fails — the front half of the paper's
// workflow: nothing is recorded, and the dump is all a developer gets.
//
// Usage:
//
//	resrun -prog crash.s -seed 7 -preempt 50 -input 0=10,20 -o crash.dump
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"res/internal/cli"
	"res/internal/vm"
)

func main() {
	var (
		progPath = flag.String("prog", "", "assembly source file (required)")
		out      = flag.String("o", "core.dump", "coredump output path on failure")
		seed     = flag.Int64("seed", 0, "scheduler seed")
		preempt  = flag.Int("preempt", 0, "preemption probability at block boundaries (0-100)")
		maxSteps = flag.Uint64("max-steps", 0, "block execution budget (0 = default)")
		lbrSize  = flag.Int("lbr", 0, "branch-record ring size (0 = default 16)")
		lbrSkip  = flag.Bool("lbr-skip-cond", false, "simulate filtered LBR (skip conditional branches)")
		verbose  = flag.Bool("v", false, "print execution statistics")
		jsonOut  = flag.Bool("json", false, "emit run outcome as JSON on stdout")
	)
	var inputs cli.InputSpecs
	flag.Var(&inputs, "input", "input channel values, ch=v1,v2,... (repeatable)")
	flag.Parse()

	if *progPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	ins, err := cli.ParseInputs(inputs)
	if err != nil {
		cli.Fatal(err)
	}
	v, err := vm.New(p, vm.Config{
		Seed:               *seed,
		PreemptPct:         *preempt,
		MaxSteps:           *maxSteps,
		Inputs:             ins,
		LBRSize:            *lbrSize,
		LBRSkipConditional: *lbrSkip,
	})
	if err != nil {
		cli.Fatal(err)
	}
	d, err := v.Run()
	if err != nil {
		cli.Fatal(err)
	}
	if *verbose {
		fmt.Printf("executed %d basic blocks across %d thread(s)\n", v.Steps(), len(v.Threads))
		for _, o := range v.Outputs() {
			fmt.Printf("output pc=%d tag=%d value=%d\n", o.PC, o.Tag, o.Value)
		}
	}
	if d == nil {
		if *jsonOut {
			emitJSON(outcome{Outcome: "clean-exit", Blocks: v.Steps(), Threads: len(v.Threads)})
		} else {
			fmt.Println("clean exit")
		}
		return
	}
	if err := cli.SaveDump(*out, d); err != nil {
		cli.Fatal(err)
	}
	if *jsonOut {
		emitJSON(outcome{
			Outcome: "failure",
			Fault:   d.Fault.String(),
			Blocks:  d.Steps,
			Threads: len(d.Threads),
			Dump:    *out,
		})
	} else {
		fmt.Printf("FAILURE: %s after %d blocks\n", d.Fault, d.Steps)
		fmt.Printf("coredump written to %s\n", *out)
	}
	os.Exit(1)
}

// outcome is the machine-readable run summary emitted with -json.
type outcome struct {
	Outcome string `json:"outcome"` // "clean-exit" or "failure"
	Fault   string `json:"fault,omitempty"`
	Blocks  uint64 `json:"blocks"`
	Threads int    `json:"threads"`
	Dump    string `json:"dump,omitempty"`
}

func emitJSON(o outcome) {
	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Println(string(buf))
}

// Command resrun executes a RES-VM assembly program in production mode and
// writes a coredump when it fails — the front half of the paper's
// workflow: nothing heavier than the free production breadcrumbs is
// recorded, and the dump is all a developer gets.
//
// Usage:
//
//	resrun -prog crash.s -seed 7 -preempt 50 -input 0=10,20 -o crash.dump
//	resrun -prog crash.s -record-evidence -evidence-sample 4 -o crash.dump
//	resrun -prog crash.s -record-checkpoints -checkpoint-every 256 -o crash.dump
//
// With -record-evidence the run additionally collects cheap production
// evidence (a sampled event log, a partial branch trace, and optional
// periodic memory probes of named globals via -probe) and writes the
// dump as an attachment container carrying the evidence; res and resd
// consume it to prune the backward search.
//
// With -record-checkpoints the run additionally records a bounded ring
// of VM-state checkpoints (every -checkpoint-every block steps, thinned
// exponentially past -checkpoint-cap so memory stays O(log T)) plus the
// schedule window that makes them replayable, attached to the dump the
// same way; res and resd use the ring to anchor the backward search so
// its cost is bounded by the checkpoint interval, not the execution
// length. Both recorders compose: their hooks are merged when both
// flags are set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"res/internal/checkpoint"
	"res/internal/cli"
	"res/internal/coredump"
	"res/internal/evidence"
	"res/internal/vm"
)

func main() {
	var (
		progPath = flag.String("prog", "", "assembly source file (required)")
		out      = flag.String("o", "core.dump", "coredump output path on failure")
		seed     = flag.Int64("seed", 0, "scheduler seed")
		preempt  = flag.Int("preempt", 0, "preemption probability at block boundaries (0-100)")
		maxSteps = flag.Uint64("max-steps", 0, "block execution budget (0 = default)")
		lbrSize  = flag.Int("lbr", 0, "branch-record ring size (0 = default 16)")
		lbrSkip  = flag.Bool("lbr-skip-cond", false, "simulate filtered LBR (skip conditional branches)")
		verbose  = flag.Bool("v", false, "print execution statistics")
		jsonOut  = flag.Bool("json", false, "emit run outcome as JSON on stdout")

		recordEv     = flag.Bool("record-evidence", false, "record production evidence and attach it to the dump")
		evSample     = flag.Int("evidence-sample", 8, "record every Nth block start into the event log")
		evWindow     = flag.Int("evidence-window", 256, "event-log ring capacity (0 = unbounded)")
		branchWindow = flag.Int("evidence-branch-window", 64, "conditional-branch trace window (0 = off)")
		probeEvery   = flag.Int("probe-every", 0, "probe the -probe globals every Nth block start (0 = off)")

		recordCk  = flag.Bool("record-checkpoints", false, "record a checkpoint ring and attach it to the dump")
		ckEvery   = flag.Uint64("checkpoint-every", 0, "checkpoint every Nth block step (0 = default 256)")
		ckCap     = flag.Int("checkpoint-cap", 0, "checkpoint ring capacity before exponential thinning (0 = default 64)")
		ckLogWin  = flag.Int("checkpoint-log-window", 0, "schedule/input log window in steps (0 = default 32768)")
		version   = flag.Bool("version", false, "print version and exit")
		logFormat = flag.String("log-format", "text", cli.LogFormatUsage)
	)
	var inputs cli.InputSpecs
	flag.Var(&inputs, "input", "input channel values, ch=v1,v2,... (repeatable)")
	var probeNames cli.InputSpecs
	flag.Var(&probeNames, "probe", "global to memory-probe when recording evidence (repeatable)")
	flag.Parse()

	if *version {
		fmt.Println(cli.VersionString("resrun"))
		return
	}
	if err := cli.SetupLogging(*logFormat, "", nil); err != nil {
		cli.Fatal(err)
	}
	if *progPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	ins, err := cli.ParseInputs(inputs)
	if err != nil {
		cli.Fatal(err)
	}
	cfg := vm.Config{
		Seed:               *seed,
		PreemptPct:         *preempt,
		MaxSteps:           *maxSteps,
		Inputs:             ins,
		LBRSize:            *lbrSize,
		LBRSkipConditional: *lbrSkip,
	}
	var rec *evidence.Recorder
	if *recordEv {
		var addrs []uint32
		for _, name := range probeNames {
			addr, err := p.GlobalAddr(name)
			if err != nil {
				cli.Fatal(fmt.Errorf("-probe: %w", err))
			}
			addrs = append(addrs, addr)
		}
		rec = evidence.NewRecorder(p, evidence.RecordConfig{
			EventEvery:   *evSample,
			EventWindow:  *evWindow,
			BranchWindow: *branchWindow,
			ProbeAddrs:   addrs,
			ProbeEvery:   *probeEvery,
		})
		cfg.Hooks = rec.Hooks()
	}
	var ckRec *checkpoint.Recorder
	if *recordCk {
		ckRec = checkpoint.NewRecorder(p, checkpoint.Config{
			Every:     *ckEvery,
			Cap:       *ckCap,
			LogWindow: *ckLogWin,
		})
		cfg.Hooks = vm.MergeHooks(cfg.Hooks, ckRec.Hooks())
	}
	v, err := vm.New(p, cfg)
	if err != nil {
		cli.Fatal(err)
	}
	if rec != nil {
		rec.Bind(v)
	}
	if ckRec != nil {
		ckRec.Bind(v)
	}
	d, err := v.Run()
	if err != nil {
		cli.Fatal(err)
	}
	if *verbose {
		fmt.Printf("executed %d basic blocks across %d thread(s)\n", v.Steps(), len(v.Threads))
		for _, o := range v.Outputs() {
			fmt.Printf("output pc=%d tag=%d value=%d\n", o.PC, o.Tag, o.Value)
		}
	}
	if d == nil {
		if *jsonOut {
			emitJSON(outcome{Outcome: "clean-exit", Blocks: v.Steps(), Threads: len(v.Threads)})
		} else {
			fmt.Println("clean exit")
		}
		return
	}
	var set evidence.Set
	if rec != nil {
		set = rec.Evidence()
	}
	var evKinds []string
	attachments := map[string][]byte{}
	if len(set) > 0 {
		evKinds = set.Kinds()
		attachments[coredump.EvidenceAttachment] = set.Encode()
	}
	checkpoints := 0
	if ckRec != nil {
		if ring := ckRec.Ring(); !ring.Empty() {
			checkpoints = len(ring.Checkpoints)
			attachments[coredump.CheckpointAttachment] = ring.Encode()
		}
	}
	if len(attachments) > 0 {
		// Attachment container: the dump plus its attachments in one file.
		dumpBytes, merr := d.Marshal()
		if merr != nil {
			cli.Fatal(merr)
		}
		att, merr := coredump.EncodeAttached(dumpBytes, attachments)
		if merr != nil {
			cli.Fatal(merr)
		}
		if werr := os.WriteFile(*out, att, 0o644); werr != nil {
			cli.Fatal(werr)
		}
	} else if err := cli.SaveDump(*out, d); err != nil {
		cli.Fatal(err)
	}
	if *jsonOut {
		emitJSON(outcome{
			Outcome:     "failure",
			Fault:       d.Fault.String(),
			Blocks:      d.Steps,
			Threads:     len(d.Threads),
			Dump:        *out,
			Evidence:    evKinds,
			Checkpoints: checkpoints,
		})
	} else {
		fmt.Printf("FAILURE: %s after %d blocks\n", d.Fault, d.Steps)
		fmt.Printf("coredump written to %s\n", *out)
		if len(evKinds) > 0 {
			fmt.Printf("evidence attached: %v\n", evKinds)
		}
		if checkpoints > 0 {
			fmt.Printf("checkpoints attached: %d\n", checkpoints)
		}
	}
	os.Exit(1)
}

// outcome is the machine-readable run summary emitted with -json.
type outcome struct {
	Outcome  string   `json:"outcome"` // "clean-exit" or "failure"
	Fault    string   `json:"fault,omitempty"`
	Blocks   uint64   `json:"blocks"`
	Threads  int      `json:"threads"`
	Dump     string   `json:"dump,omitempty"`
	Evidence []string `json:"evidence,omitempty"`
	// Checkpoints counts the recorded ring's checkpoints (0 = none
	// recorded or attached).
	Checkpoints int `json:"checkpoints,omitempty"`
}

func emitJSON(o outcome) {
	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Println(string(buf))
}

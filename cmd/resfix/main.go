// Command resfix verifies a candidate fix against a reproduced failure:
// it analyzes the coredump to synthesize the failure suffix, applies the
// patch to the program source, replays the suffix through the patched
// program, and reports a verdict.
//
// Usage:
//
//	resfix -prog crash.s -dump core.dump -patch fix.patch [-json]
//	resfix -prog crash.s -dump core.dump -patch fix.patch -submit host:8467
//
// The patch file is accepted in either form: the human text format
//
//	replace check
//	    const r3, 5
//	end
//
// (operations replace/insert/delete keyed by assembler label) or the
// canonical RESPATCH1 wire bytes. The verdict is printed as a greppable
// "verdict: ..." line and doubles as the exit code: 0 for fixed, 1 for
// not-fixed, 2 for inconclusive (the patch diverges the execution before
// the reproduced window can judge it — record a fresh failure of the
// patched program instead).
//
// With -submit the verification runs server-side (POST /v1/fixes):
// verdicts are cached by the (program, dump, options, patch) tuple, so a
// fleet asking about the same candidate fix shares one verification.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"res"
	"res/internal/cli"
	"res/internal/service"
)

func main() {
	var (
		progPath  = flag.String("prog", "", "assembly source file (required)")
		dumpPath  = flag.String("dump", "", "coredump file (required)")
		patchPath = flag.String("patch", "", "patch file, text or RESPATCH1 wire form (required)")
		timeout   = flag.Duration("timeout", 0, "analysis/verification deadline (0 = none)")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable JSON verdict on stdout")
		submit    = flag.String("submit", "", "verify via a resd daemon at this address instead of locally")
		version   = flag.Bool("version", false, "print version and exit")
		logFormat = flag.String("log-format", "text", cli.LogFormatUsage)
	)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("resfix"))
		return
	}
	if err := cli.SetupLogging(*logFormat, "", nil); err != nil {
		cli.Fatal(err)
	}
	if *progPath == "" || *dumpPath == "" || *patchPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	patchBytes, err := os.ReadFile(*patchPath)
	if err != nil {
		cli.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *submit != "" {
		verifyRemote(ctx, *submit, *progPath, *dumpPath, patchBytes, *jsonOut)
		return
	}

	patch, err := res.DecodePatch(patchBytes)
	if err != nil {
		cli.Fatal(err)
	}
	src, err := os.ReadFile(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	d, evBytes, ckBytes, err := cli.LoadDumpAttachments(*dumpPath)
	if err != nil {
		cli.Fatal(err)
	}
	opts := []res.Option{}
	if len(evBytes) > 0 {
		set, derr := res.DecodeEvidence(evBytes)
		if derr != nil {
			cli.Fatal(derr)
		}
		opts = append(opts, res.WithEvidence(set...))
	}
	if len(ckBytes) > 0 {
		ring, derr := res.DecodeCheckpoints(ckBytes)
		if derr != nil {
			cli.Fatal(derr)
		}
		if !ring.Empty() {
			opts = append(opts, res.WithCheckpoints(ring))
		}
	}
	if !*jsonOut {
		fmt.Printf("failure: %s\n", d.Fault)
		fmt.Printf("patch: %s (%d ops)\n", patch.Fingerprint(), len(patch.Ops))
	}
	r, err := res.NewAnalyzer(p, opts...).Analyze(ctx, d)
	if err != nil && r == nil {
		cli.Fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "analysis cut short: %v\n", err)
	}
	v, err := res.VerifyFix(string(src), patch, r, d)
	if err != nil {
		cli.Fatal(err)
	}
	report(v, *jsonOut)
}

// verifyRemote ships the program source, dump, and patch to a resd
// daemon (POST /v1/fixes) and polls the verdict job to completion.
func verifyRemote(ctx context.Context, addr, progPath, dumpPath string, patchBytes []byte, jsonOut bool) {
	src, err := os.ReadFile(progPath)
	if err != nil {
		cli.Fatal(err)
	}
	dump, _, _, err := cli.SplitDumpFile(dumpPath)
	if err != nil {
		cli.Fatal(err)
	}
	c := service.NewClient(addr)
	job, err := c.SubmitFix(ctx, service.SubmitFixRequest{
		ProgramName:   filepath.Base(progPath),
		ProgramSource: string(src),
		Patch:         patchBytes,
		Dump:          dump,
	})
	if err != nil {
		cli.Fatal(err)
	}
	if !job.Status.Terminal() {
		fmt.Fprintf(os.Stderr, "submitted fix job %s (status %s), polling...\n", job.ID, job.Status)
		if job, err = c.PollResult(ctx, job.ID, 250*time.Millisecond); err != nil {
			cli.Fatal(err)
		}
	}
	if job.Status != service.StatusDone {
		cli.Fatal(fmt.Errorf("fix job %s ended %s: %s", job.ID, job.Status, job.Error))
	}
	if job.Cached {
		fmt.Fprintln(os.Stderr, "served from the result store (cache hit)")
	}
	var v res.FixVerdict
	if err := json.Unmarshal(job.Report, &v); err != nil {
		cli.Fatal(err)
	}
	if jsonOut {
		fmt.Println(string(job.Report))
		os.Exit(exitCode(&v))
	}
	report(&v, false)
}

// report prints the verdict and exits with its code: fixed=0,
// not-fixed=1, inconclusive=2.
func report(v *res.FixVerdict, jsonOut bool) {
	if jsonOut {
		buf, err := json.Marshal(v)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Println(string(buf))
	} else {
		fmt.Printf("verdict: %s\n", v.Verdict)
		fmt.Printf("reason: %s\n", v.Reason)
		if v.Residual != "" {
			fmt.Printf("residual constraint: %s (satisfiable: %v)\n", v.Residual, v.ResidualSat)
		}
	}
	os.Exit(exitCode(v))
}

// exitCode maps a verdict to the process exit code: fixed=0,
// not-fixed=1, inconclusive=2.
func exitCode(v *res.FixVerdict) int {
	switch v.Verdict {
	case res.FixVerdictFixed:
		return 0
	case res.FixVerdictNotFixed:
		return 1
	default:
		return 2
	}
}

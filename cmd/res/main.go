// Command res performs reverse execution synthesis on a coredump: it
// reconstructs a replayable execution suffix, identifies the failure's
// root cause, classifies exploitability, and flags dumps that no feasible
// execution explains (likely hardware errors).
//
// Usage:
//
//	res -prog crash.s -dump core.dump [-lbr] [-outputs] [-depth 24]
package main

import (
	"flag"
	"fmt"
	"os"

	"res"
	"res/internal/breadcrumb"
	"res/internal/cli"
)

func main() {
	var (
		progPath = flag.String("prog", "", "assembly source file (required)")
		dumpPath = flag.String("dump", "", "coredump file (required)")
		depth    = flag.Int("depth", 0, "maximum suffix length in blocks (0 = default)")
		nodes    = flag.Int("nodes", 0, "backward-step attempt budget (0 = default)")
		useLBR   = flag.Bool("lbr", false, "prune the search with the dump's branch ring")
		lbrSkip  = flag.Bool("lbr-skip-cond", false, "interpret the ring as filtered-LBR hardware")
		outputs  = flag.Bool("outputs", false, "prune with error-log breadcrumbs")
		showSfx  = flag.Bool("suffix", false, "print the synthesized suffix schedule")
		stats    = flag.Bool("stats", false, "print search statistics")
	)
	flag.Parse()
	if *progPath == "" || *dumpPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	d, err := cli.LoadDump(*dumpPath)
	if err != nil {
		cli.Fatal(err)
	}

	opt := res.Options{
		MaxDepth:     *depth,
		MaxNodes:     *nodes,
		UseLBR:       *useLBR,
		MatchOutputs: *outputs,
	}
	if *lbrSkip {
		opt.LBRMode = breadcrumb.SkipConditional
	}

	fmt.Printf("failure: %s\n", d.Fault)
	r, err := res.Analyze(p, d, opt)
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Println(r.Describe())
	if r.HardwareSuspect {
		fmt.Println("verdict: the coredump is inconsistent with every feasible execution suffix")
	}
	if *showSfx && r.Suffix != nil {
		fmt.Println(r.Suffix)
		if len(r.Suffix.Inputs) > 0 {
			fmt.Printf("synthesized inputs: %v\n", r.Suffix.Inputs)
		}
		fmt.Printf("read set: %v\nwrite set: %v\n", r.Synthesized.ReadSet, r.Synthesized.WriteSet)
	}
	if *stats {
		s := r.Report.Stats
		fmt.Printf("stats: attempts=%d feasible=%d infeasible=%d unknown=%d solver-calls=%d max-depth=%d\n",
			s.Attempts, s.Feasible, s.Infeasible, s.Unknown, s.SolverCalls, s.MaxDepth)
	}
	if r.Replay != nil && r.Replay.Matches {
		fmt.Println("replay: suffix deterministically reproduces the coredump")
	}
}

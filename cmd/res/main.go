// Command res performs reverse execution synthesis on a coredump: it
// reconstructs a replayable execution suffix, identifies the failure's
// root cause, classifies exploitability, and flags dumps that no feasible
// execution explains (likely hardware errors).
//
// Usage:
//
//	res -prog crash.s -dump core.dump [-lbr] [-outputs] [-depth 24]
//	    [-timeout 30s] [-progress] [-json]
//	res -prog crash.s -dump core.dump -evidence crash.ev [-json]
//	res -prog crash.s -dump core.dump -minimize [-minimize-out min.repro]
//	res -prog crash.s -dump core.dump -submit host:8467 [-progress] [-json]
//	res -prog crash.s -dump a.dump,b.dump,c.dump -submit host:8467
//
// With -timeout the analysis is deadline-bounded and reports the best
// partial answer found before the cutoff; -progress streams search events
// to stderr; -json emits the machine-readable report on stdout; -trace
// writes the analysis span tree as Chrome trace-event JSON (open it in
// chrome://tracing or ui.perfetto.dev).
//
// Evidence: a dump file written by resrun -record-evidence embeds its
// evidence attachment and it is used automatically (disable with
// -ignore-evidence); -evidence supplies or overrides the attachment from
// a separate file of canonical evidence wire bytes (comma-separated,
// positional with -dump, "" entries for none). Evidence prunes the
// search locally and ships with the dump on -submit, where it becomes
// part of the result's cache identity.
//
// Checkpoints work the same way: a dump written by resrun
// -record-checkpoints embeds its checkpoint ring and it anchors the
// backward search automatically (disable with -ignore-checkpoints);
// -checkpoints supplies or overrides the ring from a separate file.
// Anchoring bounds the search's suffix depth by the checkpoint interval
// instead of the execution length, and the ring ships with the dump on
// -submit, where it too becomes part of the result's cache identity.
//
// With -minimize the analysis is followed by delta debugging: the
// evidence attachment set, checkpoint ring, and search budgets are
// minimized (ddmin over sources, bisection over budgets) while requiring
// every reduction to re-analyze to the byte-identical root-cause key.
// The resulting minimal repro is described on stdout and, with
// -minimize-out, written in its canonical wire form (RESMINR1) for
// archival or fix verification (see resfix). With -submit, minimization
// runs server-side instead (POST /v1/jobs/{id}/minimize; the daemon
// needs -cache-dir to archive dumps).
//
// With -submit the analysis runs remotely: the program source and dump are
// shipped to a resd ingestion daemon, which dedups the dump against its
// content-addressed store (an identical dump already analyzed is answered
// without re-analysis) and the result is polled until done — or streamed:
// with -progress the client tails GET /v1/jobs/{id}/events and prints the
// daemon's live search events. Analysis options are the daemon's; the
// local tuning flags do not apply. When -dump names several
// comma-separated files, they ship as one batch request
// (POST /v1/dumps/batch): one HTTP round trip for the whole burst,
// duplicates coalesced server-side.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"res"
	"res/internal/cli"
	"res/internal/service"
)

func main() {
	var (
		progPath  = flag.String("prog", "", "assembly source file (required)")
		dumpPath  = flag.String("dump", "", "coredump file (required)")
		depth     = flag.Int("depth", 0, "maximum suffix length in blocks (0 = default)")
		nodes     = flag.Int("nodes", 0, "backward-step attempt budget (0 = default)")
		useLBR    = flag.Bool("lbr", false, "prune the search with the dump's branch ring")
		lbrSkip   = flag.Bool("lbr-skip-cond", false, "interpret the ring as filtered-LBR hardware")
		outputs   = flag.Bool("outputs", false, "prune with error-log breadcrumbs")
		showSfx   = flag.Bool("suffix", false, "print the synthesized suffix schedule")
		stats     = flag.Bool("stats", false, "print search statistics")
		timeout   = flag.Duration("timeout", 0, "analysis deadline (0 = none)")
		progress  = flag.Bool("progress", false, "stream search progress to stderr")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable JSON report on stdout")
		submit    = flag.String("submit", "", "submit to a resd daemon at this address instead of analyzing locally")
		searchP   = flag.Int("search-parallel", 0, "candidate-level search parallelism (0 = all cores, 1 = sequential; results identical either way)")
		evPath    = flag.String("evidence", "", "evidence file(s), comma-separated positional with -dump (overrides embedded attachments; \"\" entries for none)")
		ignoreEv  = flag.Bool("ignore-evidence", false, "drop any evidence embedded in the dump file")
		ckPath    = flag.String("checkpoints", "", "checkpoint ring file(s), comma-separated positional with -dump (overrides embedded attachments; \"\" entries for none)")
		ignoreCk  = flag.Bool("ignore-checkpoints", false, "drop any checkpoint ring embedded in the dump file")
		tracePath = flag.String("trace", "", "write the analysis span tree as Chrome trace-event JSON to this file (local analysis only)")
		minimize  = flag.Bool("minimize", false, "delta-debug the tuple into a minimal repro preserving the root-cause key")
		minOut    = flag.String("minimize-out", "", "write the minimal repro's canonical wire bytes (RESMINR1) to this file (implies -minimize)")
		version   = flag.Bool("version", false, "print version and exit")
		logFormat = flag.String("log-format", "text", cli.LogFormatUsage)
	)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("res"))
		return
	}
	if err := cli.SetupLogging(*logFormat, "", nil); err != nil {
		cli.Fatal(err)
	}
	if *progPath == "" || *dumpPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	dumpPaths := strings.Split(*dumpPath, ",")
	var evPaths []string
	if *evPath != "" {
		evPaths = strings.Split(*evPath, ",")
		if len(evPaths) != len(dumpPaths) {
			cli.Fatal(fmt.Errorf("-evidence names %d files for %d dumps", len(evPaths), len(dumpPaths)))
		}
	}
	var ckPaths []string
	if *ckPath != "" {
		ckPaths = strings.Split(*ckPath, ",")
		if len(ckPaths) != len(dumpPaths) {
			cli.Fatal(fmt.Errorf("-checkpoints names %d files for %d dumps", len(ckPaths), len(dumpPaths)))
		}
	}
	if *minOut != "" {
		*minimize = true
	}
	if *submit != "" {
		if *tracePath != "" {
			cli.Fatal(fmt.Errorf("-trace applies to local analysis; for remote jobs fetch GET /v1/jobs/{id}/trace from the daemon"))
		}
		if *minimize {
			if len(dumpPaths) > 1 {
				cli.Fatal(fmt.Errorf("-minimize with -submit takes a single dump"))
			}
			submitRemoteMinimize(*submit, *progPath, *dumpPath, evidencePathAt(evPaths, 0), evidencePathAt(ckPaths, 0), *ignoreEv, *ignoreCk, *timeout, *minOut, *jsonOut)
			return
		}
		if len(dumpPaths) > 1 {
			submitRemoteBatch(*submit, *progPath, dumpPaths, evPaths, ckPaths, *ignoreEv, *ignoreCk, *timeout, *jsonOut)
			return
		}
		submitRemote(*submit, *progPath, *dumpPath, evidencePathAt(evPaths, 0), evidencePathAt(ckPaths, 0), *ignoreEv, *ignoreCk, *timeout, *progress, *jsonOut)
		return
	}
	if len(dumpPaths) > 1 {
		cli.Fatal(fmt.Errorf("multiple dumps are only supported with -submit; got %d paths", len(dumpPaths)))
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	d, evBytes, ckBytes, err := cli.LoadDumpAttachments(*dumpPath)
	if err != nil {
		cli.Fatal(err)
	}
	evBytes, err = resolveEvidence(evBytes, evidencePathAt(evPaths, 0), *ignoreEv)
	if err != nil {
		cli.Fatal(err)
	}
	ckBytes, err = resolveEvidence(ckBytes, evidencePathAt(ckPaths, 0), *ignoreCk)
	if err != nil {
		cli.Fatal(err)
	}

	opts := []res.Option{res.WithMaxDepth(*depth), res.WithMaxNodes(*nodes), res.WithSearchParallelism(*searchP)}
	if *useLBR {
		mode := res.LBRRecordAll
		if *lbrSkip {
			mode = res.LBRSkipConditional
		}
		opts = append(opts, res.WithLBR(mode))
	}
	if *outputs {
		opts = append(opts, res.WithMatchOutputs())
	}
	if len(evBytes) > 0 {
		set, derr := res.DecodeEvidence(evBytes)
		if derr != nil {
			cli.Fatal(derr)
		}
		if !*jsonOut {
			fmt.Printf("evidence: %s\n", strings.Join(set.Kinds(), ", "))
		}
		opts = append(opts, res.WithEvidence(set...))
	}
	if len(ckBytes) > 0 {
		ring, derr := res.DecodeCheckpoints(ckBytes)
		if derr != nil {
			cli.Fatal(derr)
		}
		if !ring.Empty() {
			if !*jsonOut {
				fmt.Printf("checkpoints: %d (interval %d)\n", len(ring.Checkpoints), ring.Interval)
			}
			opts = append(opts, res.WithCheckpoints(ring))
		}
	}
	if *progress {
		opts = append(opts, res.WithObserver(progressObserver()))
	}
	if *tracePath != "" {
		opts = append(opts, res.WithTrace(true))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !*jsonOut {
		fmt.Printf("failure: %s\n", d.Fault)
	}
	a := res.NewAnalyzer(p, opts...)
	r, err := a.Analyze(ctx, d)
	if err != nil && r == nil {
		cli.Fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "analysis cut short: %v\n", err)
	}
	if *tracePath != "" && r.Trace != nil {
		if werr := os.WriteFile(*tracePath, r.Trace.ChromeTrace(), 0o644); werr != nil {
			cli.Fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			len(r.Trace.Spans), *tracePath)
	}
	if *jsonOut {
		buf, jerr := r.JSON()
		if jerr != nil {
			cli.Fatal(jerr)
		}
		fmt.Println(string(buf))
		return
	}
	fmt.Println(r.Describe())
	if r.CheckpointAnchor != nil {
		fmt.Printf("checkpoint anchor: step %d (suffix depth %d)\n",
			r.CheckpointAnchor.Step, r.CheckpointAnchor.Depth)
	}
	if r.HardwareSuspect {
		fmt.Println("verdict: the coredump is inconsistent with every feasible execution suffix")
	}
	if *showSfx && r.Suffix != nil {
		fmt.Println(r.Suffix)
		if len(r.Suffix.Inputs) > 0 {
			fmt.Printf("synthesized inputs: %v\n", r.Suffix.Inputs)
		}
		fmt.Printf("read set: %v\nwrite set: %v\n", r.Synthesized.ReadSet, r.Synthesized.WriteSet)
	}
	if *stats {
		s := r.Report.Stats
		fmt.Printf("stats: attempts=%d feasible=%d infeasible=%d unknown=%d solver-calls=%d max-depth=%d\n",
			s.Attempts, s.Feasible, s.Infeasible, s.Unknown, s.SolverCalls, s.MaxDepth)
	}
	if r.Replay != nil && r.Replay.Matches {
		fmt.Println("replay: suffix deterministically reproduces the coredump")
	}
	if *minimize {
		m, merr := res.Minimize(ctx, p, d, opts...)
		if merr != nil {
			cli.Fatal(merr)
		}
		fmt.Println(res.DescribeMinimalRepro(m))
		if *minOut != "" {
			if werr := os.WriteFile(*minOut, m.Encode(), 0o644); werr != nil {
				cli.Fatal(werr)
			}
			fmt.Fprintf(os.Stderr, "minimal repro written to %s (fingerprint %s)\n", *minOut, m.Fingerprint())
		}
	}
}

// evidencePathAt returns the i-th -evidence entry, or "".
func evidencePathAt(paths []string, i int) string {
	if i < len(paths) {
		return strings.TrimSpace(paths[i])
	}
	return ""
}

// resolveEvidence applies the evidence flags to a dump's embedded
// attachment: -ignore-evidence drops it, an -evidence file replaces it.
func resolveEvidence(embedded []byte, override string, ignore bool) ([]byte, error) {
	if ignore {
		embedded = nil
	}
	if override == "" {
		return embedded, nil
	}
	return os.ReadFile(override)
}

// submitRemote ships the program source and dump (with any evidence and
// checkpoint attachments) to a resd daemon and polls the result — or,
// with -progress, tails the daemon's live event stream. The program
// registers on first sight (content-keyed), so a fleet of res clients
// submitting dumps of one binary share a single analysis session
// server-side.
func submitRemote(addr, progPath, dumpPath, evPath, ckPath string, ignoreEv, ignoreCk bool, timeout time.Duration, progress, jsonOut bool) {
	src, err := os.ReadFile(progPath)
	if err != nil {
		cli.Fatal(err)
	}
	dump, evBytes, ckBytes, err := cli.SplitDumpFile(dumpPath)
	if err != nil {
		cli.Fatal(err)
	}
	if evBytes, err = resolveEvidence(evBytes, evPath, ignoreEv); err != nil {
		cli.Fatal(err)
	}
	if ckBytes, err = resolveEvidence(ckBytes, ckPath, ignoreCk); err != nil {
		cli.Fatal(err)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	c := service.NewClient(addr)
	name := filepath.Base(progPath)
	job, err := c.SubmitSourceEvidenceCheckpoints(ctx, name, string(src), dump, evBytes, ckBytes)
	if err != nil {
		cli.Fatal(err)
	}
	if len(job.Evidence) > 0 {
		fmt.Fprintf(os.Stderr, "evidence attached: %s\n", strings.Join(job.Evidence, ", "))
	}
	if job.Checkpointed {
		fmt.Fprintln(os.Stderr, "checkpoint ring attached")
	}
	if !job.Status.Terminal() {
		if progress {
			fmt.Fprintf(os.Stderr, "submitted job %s (status %s), streaming progress...\n", job.ID, job.Status)
			start := time.Now()
			job, err = c.WatchResult(ctx, job.ID, func(ev service.ProgressEvent) {
				switch ev.Kind {
				case "depth":
					fmt.Fprintf(os.Stderr, "[%7.3fs] depth %d (attempts=%d feasible=%d)\n",
						time.Since(start).Seconds(), ev.Depth, ev.Attempts, ev.Feasible)
				case "suffix":
					fmt.Fprintf(os.Stderr, "[%7.3fs] feasible suffix at depth %d\n",
						time.Since(start).Seconds(), ev.Depth)
				case "solver":
					fmt.Fprintf(os.Stderr, "[%7.3fs] ... attempts=%d solver-calls=%d\n",
						time.Since(start).Seconds(), ev.Attempts, ev.SolverCalls)
				case "status":
					fmt.Fprintf(os.Stderr, "[%7.3fs] job %s\n", time.Since(start).Seconds(), ev.Status)
				case "dropped":
					fmt.Fprintf(os.Stderr, "[%7.3fs] (stream congested: %d events dropped)\n",
						time.Since(start).Seconds(), ev.Dropped)
				}
			})
			if err != nil {
				cli.Fatal(err)
			}
		} else {
			fmt.Fprintf(os.Stderr, "submitted job %s (status %s), polling...\n", job.ID, job.Status)
			if job, err = c.PollResult(ctx, job.ID, 250*time.Millisecond); err != nil {
				cli.Fatal(err)
			}
		}
	}
	switch job.Status {
	case service.StatusDone:
		if job.Cached {
			fmt.Fprintln(os.Stderr, "served from the result store (cache hit)")
		}
		if jsonOut {
			fmt.Println(string(job.Report))
			return
		}
		fmt.Printf("job %s done", job.ID)
		if job.Partial {
			fmt.Print(" (partial: cut short by the daemon's deadline)")
		}
		fmt.Println()
		if job.Bucket != "" {
			fmt.Printf("bucket: %s\n", job.Bucket)
		}
		fmt.Println(string(job.Report))
	case service.StatusFailed:
		cli.Fatal(fmt.Errorf("remote analysis failed: %s", job.Error))
	default:
		cli.Fatal(fmt.Errorf("job %s ended %s: %s", job.ID, job.Status, job.Error))
	}
}

// submitRemoteMinimize runs the analyze-then-minimize loop server-side:
// submit the tuple, wait for the analysis, then POST
// /v1/jobs/{id}/minimize and wait for the minimal repro. The daemon must
// archive dumps (-cache-dir) for the second step to find the tuple.
func submitRemoteMinimize(addr, progPath, dumpPath, evPath, ckPath string, ignoreEv, ignoreCk bool, timeout time.Duration, minOut string, jsonOut bool) {
	src, err := os.ReadFile(progPath)
	if err != nil {
		cli.Fatal(err)
	}
	dump, evBytes, ckBytes, err := cli.SplitDumpFile(dumpPath)
	if err != nil {
		cli.Fatal(err)
	}
	if evBytes, err = resolveEvidence(evBytes, evPath, ignoreEv); err != nil {
		cli.Fatal(err)
	}
	if ckBytes, err = resolveEvidence(ckBytes, ckPath, ignoreCk); err != nil {
		cli.Fatal(err)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	c := service.NewClient(addr)
	job, err := c.SubmitSourceEvidenceCheckpoints(ctx, filepath.Base(progPath), string(src), dump, evBytes, ckBytes)
	if err != nil {
		cli.Fatal(err)
	}
	if !job.Status.Terminal() {
		fmt.Fprintf(os.Stderr, "submitted job %s (status %s), waiting for analysis...\n", job.ID, job.Status)
		if job, err = c.PollResult(ctx, job.ID, 250*time.Millisecond); err != nil {
			cli.Fatal(err)
		}
	}
	if job.Status != service.StatusDone {
		cli.Fatal(fmt.Errorf("job %s ended %s: %s", job.ID, job.Status, job.Error))
	}
	mj, err := c.MinimizeJob(ctx, job.ID, nil)
	if err != nil {
		cli.Fatal(err)
	}
	if !mj.Status.Terminal() {
		fmt.Fprintf(os.Stderr, "minimize job %s (status %s), waiting...\n", mj.ID, mj.Status)
		if mj, err = c.PollResult(ctx, mj.ID, 250*time.Millisecond); err != nil {
			cli.Fatal(err)
		}
	}
	if mj.Status != service.StatusDone {
		cli.Fatal(fmt.Errorf("minimize job %s ended %s: %s", mj.ID, mj.Status, mj.Error))
	}
	if mj.Cached {
		fmt.Fprintln(os.Stderr, "served from the result store (cache hit)")
	}
	if jsonOut {
		fmt.Println(string(mj.Report))
		return
	}
	var rep struct {
		Repro []byte `json:"repro"`
	}
	if err := json.Unmarshal(mj.Report, &rep); err != nil {
		cli.Fatal(err)
	}
	m, err := res.DecodeMinimalRepro(rep.Repro)
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Println(res.DescribeMinimalRepro(m))
	if minOut != "" {
		if werr := os.WriteFile(minOut, m.Encode(), 0o644); werr != nil {
			cli.Fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "minimal repro written to %s (fingerprint %s)\n", minOut, m.Fingerprint())
	}
}

// submitRemoteBatch ships several dumps (with any evidence and
// checkpoint attachments) in one POST /v1/dumps/batch round trip, then
// polls every distinct job to completion and prints a per-dump summary
// (or a JSON array of reports with -json).
func submitRemoteBatch(addr, progPath string, dumpPaths, evPaths, ckPaths []string, ignoreEv, ignoreCk bool, timeout time.Duration, jsonOut bool) {
	src, err := os.ReadFile(progPath)
	if err != nil {
		cli.Fatal(err)
	}
	req := service.BatchSubmitRequest{
		ProgramName:   filepath.Base(progPath),
		ProgramSource: string(src),
	}
	anyEv, anyCk := false, false
	for i, dp := range dumpPaths {
		dump, evBytes, ckBytes, err := cli.SplitDumpFile(strings.TrimSpace(dp))
		if err != nil {
			cli.Fatal(err)
		}
		if evBytes, err = resolveEvidence(evBytes, evidencePathAt(evPaths, i), ignoreEv); err != nil {
			cli.Fatal(err)
		}
		if ckBytes, err = resolveEvidence(ckBytes, evidencePathAt(ckPaths, i), ignoreCk); err != nil {
			cli.Fatal(err)
		}
		if len(evBytes) > 0 {
			anyEv = true
		}
		if len(ckBytes) > 0 {
			anyCk = true
		}
		req.Dumps = append(req.Dumps, dump)
		req.Evidence = append(req.Evidence, evBytes)
		req.Checkpoints = append(req.Checkpoints, ckBytes)
	}
	if !anyEv {
		req.Evidence = nil
	}
	if !anyCk {
		req.Checkpoints = nil
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	c := service.NewClient(addr)
	items, err := c.SubmitBatch(ctx, req)
	if err != nil {
		cli.Fatal(err)
	}
	// Poll each distinct in-flight job once; duplicates share the answer.
	finals := make(map[string]service.Job)
	for _, it := range items {
		if it.Error != "" || it.Job.ID == "" {
			continue
		}
		if _, done := finals[it.Job.ID]; done {
			continue
		}
		job := it.Job
		if !job.Status.Terminal() {
			if job, err = c.PollResult(ctx, job.ID, 250*time.Millisecond); err != nil {
				cli.Fatal(err)
			}
		}
		finals[job.ID] = job
	}
	failed := 0
	if jsonOut {
		reports := make([]json.RawMessage, 0, len(items))
		for _, it := range items {
			if it.Error != "" {
				failed++
				reports = append(reports, nil)
				continue
			}
			job := finals[it.Job.ID]
			if job.Status != service.StatusDone {
				failed++
				reports = append(reports, nil)
				continue
			}
			reports = append(reports, job.Report)
		}
		buf, err := json.Marshal(reports)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Println(string(buf))
	} else {
		for i, it := range items {
			name := strings.TrimSpace(dumpPaths[i])
			switch {
			case it.Error != "":
				failed++
				fmt.Printf("%s: error: %s\n", name, it.Error)
			default:
				job := finals[it.Job.ID]
				tag := ""
				if it.Duplicate {
					tag = " (duplicate in batch)"
				} else if job.Cached {
					tag = " (cache hit)"
				}
				if job.Status != service.StatusDone {
					failed++
					fmt.Printf("%s: %s: %s%s\n", name, job.Status, job.Error, tag)
					continue
				}
				fmt.Printf("%s: done%s bucket=%s job=%s\n", name, tag, job.Bucket, job.ID)
			}
		}
		fmt.Fprintf(os.Stderr, "batch: %d dumps, %d distinct jobs, %d failed\n",
			len(items), len(finals), failed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// progressObserver prints a compact search trace to stderr: one line per
// depth advance and per feasible suffix, a periodic stats heartbeat.
func progressObserver() func(res.Event) {
	start := time.Now()
	return func(ev res.Event) {
		switch ev.Kind {
		case res.EventDepth:
			fmt.Fprintf(os.Stderr, "[%7.3fs] depth %d (attempts=%d feasible=%d)\n",
				time.Since(start).Seconds(), ev.Depth, ev.Stats.Attempts, ev.Stats.Feasible)
		case res.EventSuffix:
			fmt.Fprintf(os.Stderr, "[%7.3fs] feasible suffix at depth %d\n",
				time.Since(start).Seconds(), ev.Depth)
		case res.EventSolver:
			fmt.Fprintf(os.Stderr, "[%7.3fs] ... attempts=%d solver-calls=%d unknown=%d\n",
				time.Since(start).Seconds(), ev.Stats.Attempts, ev.Stats.SolverCalls, ev.Stats.Unknown)
		}
	}
}

// Command restriage compares bug-report bucketing strategies (§3.1): the
// WER-style call-stack baseline against RES root-cause bucketing, over a
// corpus of coredumps.
//
// With -demo it generates the built-in corpus (several bugs, several
// schedule-dependent manifestations each) and prints both evaluations;
// with -manifest it reads lines of the form
//
//	<program.s> <dump file> <ground truth label>
//
// and evaluates those.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"res"
	"res/internal/cli"
	"res/internal/coredump"
	"res/internal/prog"
	"res/internal/triage"
	"res/internal/workload"
)

func main() {
	var (
		demo     = flag.Bool("demo", false, "run on the built-in workload corpus")
		manifest = flag.String("manifest", "", "manifest file: prog dump label per line")
		perBug   = flag.Int("per-bug", 4, "demo: reports generated per bug")
		depth    = flag.Int("depth", 14, "RES suffix depth budget")
		buckets  = flag.Bool("buckets", false, "print bucket composition")
	)
	flag.Parse()

	var corpus []triage.Item
	switch {
	case *demo:
		corpus = demoCorpus(*perBug)
	case *manifest != "":
		var err error
		corpus, err = loadManifest(*manifest)
		if err != nil {
			cli.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("corpus: %d reports\n\n", len(corpus))

	wer := triage.StackClassifier()
	rc := func(it triage.Item) (string, error) {
		r, err := res.Analyze(it.Prog, it.Dump, res.Options{MaxDepth: *depth})
		if err != nil {
			return "", err
		}
		if r.Cause == nil {
			return "", fmt.Errorf("no root cause")
		}
		return it.App + "|" + r.Cause.Key(), nil
	}

	fmt.Printf("WER-style (stack):      %v\n", triage.Evaluate(corpus, wer))
	fmt.Printf("RES (root cause):       %v\n", triage.Evaluate(corpus, rc))
	if *buckets {
		fmt.Println("\nstack buckets:")
		fmt.Print(triage.BucketSummary(corpus, wer))
		fmt.Println("\nroot-cause buckets:")
		fmt.Print(triage.BucketSummary(corpus, rc))
	}
}

func demoCorpus(perBug int) []triage.Item {
	var corpus []triage.Item
	for _, bug := range workload.TriageCorpus() {
		p := bug.Program()
		quota := (perBug + len(bug.Configs) - 1) / len(bug.Configs)
		found := 0
		for _, base := range bug.Configs {
			got := 0
			for s := int64(0); s < 300 && got < quota && found < perBug; s++ {
				cfg := base
				cfg.Seed = s
				d, err := res.Run(p, cfg)
				if err != nil {
					cli.Fatal(err)
				}
				if d == nil || d.Fault.Kind == coredump.FaultBudget {
					continue
				}
				if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
					continue
				}
				corpus = append(corpus, triage.Item{Label: bug.Name, App: bug.AppName(), Dump: d, Prog: p})
				found++
				got++
			}
		}
	}
	return corpus
}

func loadManifest(path string) ([]triage.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	progs := make(map[string]*prog.Program)
	var corpus []triage.Item
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'prog dump label'", path, line)
		}
		p, ok := progs[fields[0]]
		if !ok {
			var err error
			p, err = cli.LoadProgram(fields[0])
			if err != nil {
				return nil, err
			}
			progs[fields[0]] = p
		}
		d, err := cli.LoadDump(fields[1])
		if err != nil {
			return nil, err
		}
		corpus = append(corpus, triage.Item{Label: fields[2], Dump: d, Prog: p})
	}
	return corpus, sc.Err()
}

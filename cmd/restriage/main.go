// Command restriage compares bug-report bucketing strategies (§3.1): the
// WER-style call-stack baseline against RES root-cause bucketing, over a
// corpus of coredumps.
//
// With -demo it generates the built-in corpus (several bugs, several
// schedule-dependent manifestations each) and prints both evaluations;
// with -manifest it reads lines of the form
//
//	<program.s> <dump file> <ground truth label> [evidence file]
//
// and evaluates those. One analysis session is opened per distinct
// program and reused for every report of that program; -parallel fans the
// corpus out over a worker pool, and -timeout bounds the whole run.
//
// With -evidence, evidence attachments (the manifest's optional fourth
// column, or attachments embedded in the dump files by
// resrun -record-evidence) prune each report's analysis; the evidence
// fingerprint joins the cache key, so cached and fresh classifications
// under different evidence never collide.
//
// With -cache, results are kept in a content-addressed store keyed by
// (program, dump, options) fingerprints — duplicate dumps across the
// batch (the normal shape of a production report stream) skip re-analysis
// entirely, and the hit/miss counts are reported with the evaluation.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"res"
	"res/internal/cli"
	"res/internal/coredump"
	"res/internal/prog"
	"res/internal/store"
	"res/internal/triage"
	"res/internal/workload"
)

func main() {
	var (
		demo      = flag.Bool("demo", false, "run on the built-in workload corpus")
		manifest  = flag.String("manifest", "", "manifest file: prog dump label per line")
		perBug    = flag.Int("per-bug", 4, "demo: reports generated per bug")
		depth     = flag.Int("depth", 14, "RES suffix depth budget")
		buckets   = flag.Bool("buckets", false, "print bucket composition")
		parallel  = flag.Int("parallel", 1, "concurrent analyses (<1 = GOMAXPROCS)")
		searchP   = flag.Int("search-parallel", 1, "candidate-level parallelism within each analysis (0 = all cores; keep 1 when -parallel already saturates the machine)")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole corpus (0 = none)")
		cache     = flag.Bool("cache", false, "dedup duplicate dumps through a content-addressed result store")
		useEv     = flag.Bool("evidence", false, "prune analyses with evidence attachments (manifest 4th column or embedded in dump files)")
		version   = flag.Bool("version", false, "print version and exit")
		logFormat = flag.String("log-format", "text", cli.LogFormatUsage)
	)
	flag.Parse()

	if *version {
		fmt.Println(cli.VersionString("restriage"))
		return
	}
	if err := cli.SetupLogging(*logFormat, "", nil); err != nil {
		cli.Fatal(err)
	}
	var corpus []triage.Item
	switch {
	case *demo:
		corpus = demoCorpus(*perBug)
	case *manifest != "":
		var err error
		corpus, err = loadManifest(*manifest)
		if err != nil {
			cli.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("corpus: %d reports\n\n", len(corpus))

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// One long-lived analysis session per distinct program: the
	// predecessor index is computed once and shared by every report of
	// that program, across all workers.
	sessions := make(map[*prog.Program]*res.Analyzer)
	for _, it := range corpus {
		if _, ok := sessions[it.Prog]; !ok {
			sessions[it.Prog] = res.NewAnalyzer(it.Prog, res.WithMaxDepth(*depth), res.WithSearchParallelism(*searchP))
		}
	}

	var st *store.Store
	if *cache {
		st = store.New(0)
	}
	start := time.Now()
	keys, errs, hits, misses := classifyAll(ctx, sessions, corpus, *parallel, *depth, st, *useEv)
	elapsed := time.Since(start)

	wer := triage.StackClassifier()
	rc := memoClassifier(corpus, keys, errs)

	fmt.Printf("RES analyzed %d reports in %v (parallel=%d)\n", len(corpus), elapsed.Round(time.Millisecond), *parallel)
	if *cache {
		fmt.Printf("cache: %d hits, %d misses (%.0f%% of analyses skipped)\n",
			hits, misses, 100*float64(hits)/float64(max(hits+misses, 1)))
	}
	fmt.Println()
	fmt.Printf("WER-style (stack):      %v\n", triage.Evaluate(corpus, wer))
	fmt.Printf("RES (root cause):       %v\n", triage.Evaluate(corpus, rc))
	if *buckets {
		fmt.Println("\nstack buckets:")
		fmt.Print(triage.BucketSummary(corpus, wer))
		fmt.Println("\nroot-cause buckets:")
		fmt.Print(triage.BucketSummary(corpus, rc))
	}
}

// classifyAll analyzes every corpus item through its program's session,
// one AnalyzeBatch per program group. Results are positional and
// identical to a sequential run (each analysis is independent and
// deterministic).
//
// With a non-nil store, each (program, dump, options) tuple is looked up
// first: duplicate dumps in the batch — and any tuple analyzed by an
// earlier batch sharing the store — skip re-analysis, and only cache
// misses reach the worker pool. Complete (non-partial) results are stored
// as their deterministic JSON reports, so a cached classification is
// byte-for-byte the one a fresh analysis would have produced.
//
// With useEvidence, an item's evidence attachment prunes its analysis
// and its fingerprint joins the item's cache key; evidence-carrying
// items are analyzed individually (evidence is per-dump, a batch shares
// its options), evidence-free items still batch.
func classifyAll(ctx context.Context, sessions map[*prog.Program]*res.Analyzer, corpus []triage.Item, parallelism, depth int, st *store.Store, useEvidence bool) (keys []string, errs []error, hits, misses int) {
	keys = make([]string, len(corpus))
	errs = make([]error, len(corpus))
	groups := make(map[*prog.Program][]int)
	for i, it := range corpus {
		groups[it.Prog] = append(groups[it.Prog], i)
	}
	baseDesc := fmt.Sprintf("restriage depth=%d", depth)
	evidenceOf := make(map[int]res.EvidenceSet)
	itemFP := func(i int) store.Fingerprint {
		desc := baseDesc
		if set := evidenceOf[i]; len(set) > 0 {
			desc += " evidence=" + set.Fingerprint()
		}
		return store.OptionsFingerprint(desc)
	}
	if useEvidence {
		for i, it := range corpus {
			if len(it.Evidence) == 0 {
				continue
			}
			set, err := res.DecodeEvidence(it.Evidence)
			if err != nil {
				errs[i] = err
				continue
			}
			if len(set) > 0 {
				evidenceOf[i] = set
			}
		}
	}
	for p, idxs := range groups {
		// Resolve cache hits and dedup duplicates first: `fresh` keeps one
		// representative position per distinct tuple; `sharing` maps each
		// representative to every position awaiting its result (duplicates
		// within the batch count as hits — they skip re-analysis).
		var fresh []int
		sharing := make(map[int][]int, len(idxs))
		resultKeys := make(map[int]store.Key, len(idxs))
		if st != nil {
			progFP, err := store.ProgramFingerprint(p)
			if err != nil {
				cli.Fatal(err)
			}
			firstSeen := make(map[store.Key]int, len(idxs))
			for _, i := range idxs {
				if errs[i] != nil {
					continue // bad evidence attachment
				}
				dumpFP, _, err := store.DumpFingerprint(corpus[i].Dump)
				if err != nil {
					errs[i] = err
					continue
				}
				k := store.ResultKey(progFP, dumpFP, itemFP(i))
				if rep, ok := st.Get(k); ok {
					hits++
					keys[i], errs[i] = keyFromReport(corpus[i].App, rep)
					continue
				}
				if rep, dup := firstSeen[k]; dup {
					hits++
					sharing[rep] = append(sharing[rep], i)
					continue
				}
				misses++
				firstSeen[k] = i
				resultKeys[i] = k
				fresh = append(fresh, i)
				sharing[i] = []int{i}
			}
		} else {
			for _, i := range idxs {
				if errs[i] != nil {
					continue
				}
				fresh = append(fresh, i)
				sharing[i] = []int{i}
			}
		}
		if len(fresh) == 0 {
			continue
		}
		// Evidence is per-dump while a batch shares its options, so
		// evidence-carrying representatives run individually — fanned over
		// the same worker count as the batch; the rest batch as before.
		var batchFresh, evFresh []int
		resultOf := make(map[int]*res.Result, len(fresh))
		for _, i := range fresh {
			if len(evidenceOf[i]) > 0 {
				evFresh = append(evFresh, i)
			} else {
				batchFresh = append(batchFresh, i)
			}
		}
		if len(evFresh) > 0 {
			workers := parallelism
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			if workers > len(evFresh) {
				workers = len(evFresh)
			}
			evResults := make([]*res.Result, len(evFresh))
			jobs := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := range jobs {
						i := evFresh[j]
						r, aerr := sessions[p].Analyze(ctx, corpus[i].Dump, res.WithEvidence(evidenceOf[i]...))
						if aerr != nil && r == nil {
							fmt.Fprintf(os.Stderr, "analyze: %v\n", aerr)
						}
						evResults[j] = r
					}
				}()
			}
			for j := range evFresh {
				jobs <- j
			}
			close(jobs)
			wg.Wait()
			for j, i := range evFresh {
				resultOf[i] = evResults[j]
			}
		}
		if len(batchFresh) > 0 {
			dumps := make([]*coredump.Dump, len(batchFresh))
			for j, i := range batchFresh {
				dumps[j] = corpus[i].Dump
			}
			results, err := sessions[p].AnalyzeBatch(ctx, dumps, parallelism)
			if err != nil {
				// Per-dump failures surface positionally below; the joined
				// batch error is diagnostic only.
				fmt.Fprintf(os.Stderr, "batch: %v\n", err)
			}
			for j, i := range batchFresh {
				resultOf[i] = results[j]
			}
		}
		for _, rep := range fresh {
			r := resultOf[rep]
			for _, i := range sharing[rep] {
				switch {
				case r == nil:
					errs[i] = fmt.Errorf("no root cause")
				case r.Cause != nil:
					// A deadline-cut analysis still returns its partial
					// result; a cause it already verified by faithful
					// replay is a valid bucketing key.
					keys[i] = corpus[i].App + "|" + r.Cause.Key()
				default:
					errs[i] = fmt.Errorf("no root cause")
				}
			}
			if r != nil && st != nil && !r.Partial {
				if out, jerr := r.JSON(); jerr == nil {
					st.Put(resultKeys[rep], out)
				}
			}
		}
	}
	return keys, errs, hits, misses
}

// keyFromReport recovers the bucketing key from a stored report, via the
// report's exported schema so cached and fresh classifications agree.
func keyFromReport(app string, rep []byte) (string, error) {
	var parsed res.ReportJSON
	if err := json.Unmarshal(rep, &parsed); err != nil {
		return "", err
	}
	if parsed.Cause == nil || parsed.Cause.Key == "" {
		return "", fmt.Errorf("no root cause")
	}
	return app + "|" + parsed.Cause.Key, nil
}

// memoClassifier serves the precomputed classifications, keyed by the
// item's dump (each report carries a distinct dump object).
func memoClassifier(corpus []triage.Item, keys []string, errs []error) triage.Classifier {
	byDump := make(map[*coredump.Dump]int, len(corpus))
	for i, it := range corpus {
		byDump[it.Dump] = i
	}
	return func(it triage.Item) (string, error) {
		i, ok := byDump[it.Dump]
		if !ok {
			return "", fmt.Errorf("unknown report")
		}
		return keys[i], errs[i]
	}
}

func demoCorpus(perBug int) []triage.Item {
	var corpus []triage.Item
	for _, bug := range workload.TriageCorpus() {
		p := bug.Program()
		quota := (perBug + len(bug.Configs) - 1) / len(bug.Configs)
		found := 0
		for _, base := range bug.Configs {
			got := 0
			for s := int64(0); s < 300 && got < quota && found < perBug; s++ {
				cfg := base
				cfg.Seed = s
				d, err := res.Run(p, cfg)
				if err != nil {
					cli.Fatal(err)
				}
				if d == nil || d.Fault.Kind == coredump.FaultBudget {
					continue
				}
				if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
					continue
				}
				corpus = append(corpus, triage.Item{Label: bug.Name, App: bug.AppName(), Dump: d, Prog: p})
				found++
				got++
			}
		}
	}
	return corpus
}

func loadManifest(path string) ([]triage.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	progs := make(map[string]*prog.Program)
	var corpus []triage.Item
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want 'prog dump label [evidence]'", path, line)
		}
		p, ok := progs[fields[0]]
		if !ok {
			var err error
			p, err = cli.LoadProgram(fields[0])
			if err != nil {
				return nil, err
			}
			progs[fields[0]] = p
		}
		d, evBytes, err := cli.LoadDumpEvidence(fields[1])
		if err != nil {
			return nil, err
		}
		if len(fields) == 4 {
			if evBytes, err = os.ReadFile(fields[3]); err != nil {
				return nil, err
			}
		}
		corpus = append(corpus, triage.Item{Label: fields[2], Dump: d, Prog: p, Evidence: evBytes})
	}
	return corpus, sc.Err()
}

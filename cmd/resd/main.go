// Command resd is the crash-ingestion daemon: a fleet ships coredumps to
// it over HTTP, it dedups them against a content-addressed result store,
// analyzes fresh ones on per-program shards of reusable analysis
// sessions, and groups the results into crash buckets by root-cause
// signature.
//
// Usage:
//
//	resd [-addr :8467] [-depth 24] [-nodes 0] [-lbr] [-outputs]
//	     [-workers 2] [-queue 64] [-job-timeout 1m] [-search-parallel 0]
//	     [-cache-entries 4096] [-cache-dir /var/lib/resd]
//	     [-jobs-cap 65536] [-jobs-ttl 0] [-retries 2] [-journal path]
//	     [-peers url,url,...] [-advertise url] [-replicas 2]
//	     [-repair-interval 0] [-breaker-threshold 3] [-breaker-cooldown 2s]
//	     [-max-body-mb 256] [-spool-dir dir]
//	     [-fault-spec seam:kind:prob,...] [-fault-seed 1]
//	     [-pprof] [-slow-analysis 5s] [-drain-timeout 30s]
//	     [-log-format text|json] [-flightrec-events 256]
//
// API (JSON):
//
//	POST /v1/programs       {"name","source"} -> {"program_id"}
//	POST /v1/dumps          {"program_id"|"program_source","dump":base64,
//	                         "options":{"max_depth","beam_width"}}
//	                        -> job (202 queued, 200 done/cached,
//	                           429 queue full, 503 draining)
//	POST /v1/dumps/batch    {"program_id"|"program_source","dumps":[...]}
//	                        -> {"jobs":[...]} (positional, per-item errors)
//	POST /v1/fixes          {"program_id"|"program_source","patch":base64,
//	                         "dump":base64} -> verdict job; the report is
//	                        a fixed/not-fixed/inconclusive fix-verification
//	                        verdict, cached by the (program, dump, options,
//	                        patch) tuple
//	POST /v1/jobs/{id}/minimize  delta-debug a finished analysis job's
//	                        tuple into a minimal repro preserving the
//	                        root-cause key (needs -cache-dir so the
//	                        ingest archive still holds the dump);
//	                        -> minimize job whose report carries the
//	                        canonical RESMINR1 repro bytes
//	GET  /v1/results/{id}   job status + deterministic report
//	GET  /v1/jobs/{id}/trace  the job's distributed trace, stitched
//	                          across every node it touched (?format=chrome
//	                          for chrome://tracing / Perfetto trace-event
//	                          JSON, ?format=text for an indented summary)
//	GET  /v1/buckets        crash-dedup buckets
//	GET  /healthz           liveness
//	GET  /metrics           Prometheus text metrics (counters + latency
//	                        histograms + runtime gauges)
//	GET  /internal/v1/flightrec  the always-on flight recorder: a bounded
//	                        ring of recent spans, warnings, faults, and
//	                        repair events, auto-dumped on panic and on
//	                        -slow-analysis hits
//
// With -peers, N daemons form one logical service: every node routes
// each program's dumps to its rendezvous owner (failing over when the
// owner is down), replicates completed results to -replicas nodes, and
// merges the cluster-wide bucket view. -journal makes job history and
// bucket membership durable across restarts. Cluster-mode endpoints:
//
//	GET  /v1/cluster                membership + per-peer health
//	GET  /v1/cluster/route/{prog}   a program's owner + failover order
//	GET  /v1/cluster/metrics        federated metrics: counters summed and
//	                                histograms merged across live nodes,
//	                                gauges tagged per-node
//
// On SIGINT/SIGTERM the daemon drains: in-flight analyses finish (bounded
// by -drain-timeout, after which they are cut and report partial
// results), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"res/internal/cli"
	"res/internal/cluster"
	"res/internal/fault"
	"res/internal/obs"
	"res/internal/service"
	"res/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8467", "listen address")
		depth        = flag.Int("depth", 24, "maximum suffix length in blocks")
		nodes        = flag.Int("nodes", 0, "backward-step attempt budget (0 = default)")
		beam         = flag.Int("beam", 0, "frontier beam width (0 = unlimited)")
		useLBR       = flag.Bool("lbr", false, "prune searches with each dump's branch ring")
		lbrSkip      = flag.Bool("lbr-skip-cond", false, "interpret rings as filtered-LBR hardware")
		outputs      = flag.Bool("outputs", false, "prune with error-log breadcrumbs")
		workers      = flag.Int("workers", 2, "concurrent analyses per program shard")
		queue        = flag.Int("queue", service.DefaultQueueDepth, "pending dumps per shard before 429s")
		jobTimeout   = flag.Duration("job-timeout", time.Minute, "per-analysis deadline (0 = none)")
		cacheEntries = flag.Int("cache-entries", 0, "result-store memory entries (0 = default)")
		cacheDir     = flag.String("cache-dir", "", "result-store disk tier (empty = memory only)")
		drain        = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain bound")
		searchP      = flag.Int("search-parallel", 0, "candidate-level parallelism within each analysis (0 = auto: cores divided by -workers; 1 = sequential)")
		jobsCap      = flag.Int("jobs-cap", 65536, "terminal job records kept in memory before oldest-first eviction (0 = unbounded)")
		jobsTTL      = flag.Duration("jobs-ttl", 0, "evict terminal job records older than this (0 = no TTL)")
		retries      = flag.Int("retries", 2, "re-queue a failed analysis up to this many times with exponential backoff (0 = failures are final)")
		retryBackoff = flag.Duration("retry-backoff", service.DefaultRetryBackoff, "first retry delay; doubles per retry")
		journalPath  = flag.String("journal", "", "append-only job journal: job history and bucket membership survive restarts (empty = off)")
		peersFlag    = flag.String("peers", "", "comma-separated base URLs of EVERY cluster node, this one included (empty = single-node)")
		advertise    = flag.String("advertise", "", "this node's URL within -peers (required with -peers)")
		replicas     = flag.Int("replicas", cluster.DefaultReplicas, "nodes (owner included) holding each completed result/dump blob")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
		slowAnalysis = flag.Duration("slow-analysis", 0, "log a span-tree summary to stderr for analyses at least this slow (0 = off)")
		maxBodyMB    = flag.Int64("max-body-mb", 0, "request-body cap in MiB for submissions and routing (0 = 256)")
		repairEvery  = flag.Duration("repair-interval", 0, "anti-entropy sweep period in cluster mode (0 = off; POST /internal/v1/repair always works)")
		brkThreshold = flag.Int("breaker-threshold", 0, "consecutive peer failures that open its circuit breaker (0 = 3)")
		brkCooldown  = flag.Duration("breaker-cooldown", 0, "open-circuit cooldown before a half-open trial (0 = 2s)")
		spoolDir     = flag.String("spool-dir", "", "directory for spooling oversized routed bodies (empty = system temp)")
		faultSpec    = flag.String("fault-spec", "", "chaos-testing fault injection: comma-separated seam:kind:prob[:delay] rules (e.g. store:read-error:0.05)")
		faultSeed    = flag.Uint64("fault-seed", 1, "deterministic PRNG seed for -fault-spec")
		logFormat    = flag.String("log-format", "text", cli.LogFormatUsage)
		flightEvents = flag.Int("flightrec-events", obs.DefaultFlightEvents, "flight recorder ring capacity (events retained for /internal/v1/flightrec and crash dumps)")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("resd"))
		return
	}

	// The node identity tags every log record, span, and flight event:
	// the advertised URL in cluster mode, the bare process otherwise.
	nodeName := *advertise
	if nodeName == "" {
		nodeName = "resd"
	}
	flightRec := obs.NewFlightRecorder(*flightEvents)
	if err := cli.SetupLogging(*logFormat, nodeName, flightRec); err != nil {
		cli.Fatal(err)
	}
	// A crash must not take the flight recorder's story with it: dump the
	// ring to stderr before the runtime prints the stack and dies.
	defer func() {
		if rec := recover(); rec != nil {
			flightRec.Dump(os.Stderr, fmt.Sprintf("panic: %v", rec))
			panic(rec)
		}
	}()

	faults, err := fault.Parse(*faultSpec, *faultSeed)
	if err != nil {
		cli.Fatal(err)
	}
	if faults != nil {
		slog.Warn("CHAOS MODE: fault injection armed", "spec", fmt.Sprint(faults), "seed", *faultSeed)
	}

	var st *store.Store
	if *cacheDir != "" {
		if st, err = store.NewDisk(*cacheEntries, *cacheDir); err != nil {
			cli.Fatal(err)
		}
	} else {
		st = store.New(*cacheEntries)
	}
	st.SetFaults(faults)
	var journal *service.Journal
	if *journalPath != "" {
		if journal, err = service.OpenJournal(*journalPath); err != nil {
			cli.Fatal(err)
		}
		defer journal.Close()
		journal.SetFaults(faults)
	}
	svc := service.New(service.Config{
		Analysis: service.AnalysisConfig{
			MaxDepth:           *depth,
			MaxNodes:           *nodes,
			BeamWidth:          *beam,
			UseLBR:             *useLBR,
			LBRSkipConditional: *lbrSkip,
			MatchOutputs:       *outputs,
			SearchParallelism:  *searchP,
		},
		QueueDepth:     *queue,
		ShardWorkers:   *workers,
		JobTimeout:     *jobTimeout,
		Store:          st,
		MaxJobs:        *jobsCap,
		JobRetention:   *jobsTTL,
		MaxRetries:     *retries,
		RetryBackoff:   *retryBackoff,
		Journal:        journal,
		SlowThreshold:  *slowAnalysis,
		MaxRequestBody: *maxBodyMB << 20,
		Faults:         faults,
		Node:           nodeName,
		FlightRec:      flightRec,
	})

	handler := http.Handler(svc.Handler())
	var node *cluster.Node
	if *peersFlag != "" {
		if *advertise == "" {
			cli.Fatal(errors.New("resd: -peers requires -advertise (this node's URL within the peer list)"))
		}
		node, err = cluster.New(cluster.Config{
			Self:             *advertise,
			Peers:            strings.Split(*peersFlag, ","),
			Replicas:         *replicas,
			Service:          svc,
			RepairInterval:   *repairEvery,
			BreakerThreshold: *brkThreshold,
			BreakerCooldown:  *brkCooldown,
			SpoolDir:         *spoolDir,
			MaxRouteBody:     *maxBodyMB << 20,
			Faults:           faults,
			FlightRec:        flightRec,
		})
		if err != nil {
			cli.Fatal(err)
		}
		handler = node.Handler()
		slog.Info("cluster mode", "nodes", len(node.Peers()), "self", node.Self(), "replicas", *replicas)
	}
	if *pprofOn {
		// Profiling is opt-in: the pprof endpoints expose internals and
		// cost CPU when scraped, so fleet operators enable them only when
		// chasing a hot path.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		slog.Info("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		slog.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "depth", *depth)
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		cli.Fatal(err)
	case s := <-sig:
		slog.Info("draining", "signal", s.String(), "timeout", *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain before detaching the cluster layer: analyses that complete
	// during the drain window must still write through to their replicas.
	if err := svc.Shutdown(ctx); err != nil {
		slog.Warn("drain cut short", "err", err)
	}
	if node != nil {
		node.Close()
	}
	if err := srv.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Warn("http shutdown", "err", err)
	}
	m := svc.Metrics()
	slog.Info("drained", "submitted", m.Submitted, "completed", m.Completed,
		"cached", m.CacheHits, "buckets", m.Buckets)
}

// Command resdbg is the interactive debugger over a synthesized suffix:
// the paper's §3.3 experience of stepping (forward AND backward) through
// the reconstructed last milliseconds of a failed production execution,
// with no recording of the original run.
//
// Usage:
//
//	resdbg -prog crash.s -dump core.dump
//
// Commands: step (s), rstep (rs), continue (c), break <pc>, watch <addr>,
// regs [tid], mem <addr> [n], where, goto <step>, restart, fault, quit.
//
// When the dump embeds a checkpoint ring (resrun -record-checkpoints),
// the ring both anchors suffix synthesis — bounding its cost by the
// checkpoint interval — and enables the goto command: "goto <step>"
// materializes the machine exactly as it was when that many blocks had
// executed, by restoring the nearest preceding checkpoint and replaying
// the recorded schedule from there.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"res"
	"res/internal/checkpoint"
	"res/internal/cli"
	"res/internal/coredump"
	"res/internal/replay"
)

func main() {
	var (
		progPath  = flag.String("prog", "", "assembly source file (required)")
		dumpPath  = flag.String("dump", "", "coredump file (required)")
		depth     = flag.Int("depth", 0, "maximum suffix length (0 = default)")
		timeout   = flag.Duration("timeout", 0, "synthesis deadline (0 = none)")
		searchP   = flag.Int("search-parallel", 0, "candidate-level search parallelism (0 = all cores, 1 = sequential)")
		ignoreCk  = flag.Bool("ignore-checkpoints", false, "drop any checkpoint ring embedded in the dump file")
		version   = flag.Bool("version", false, "print version and exit")
		logFormat = flag.String("log-format", "text", cli.LogFormatUsage)
	)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("resdbg"))
		return
	}
	if err := cli.SetupLogging(*logFormat, "", nil); err != nil {
		cli.Fatal(err)
	}
	if *progPath == "" || *dumpPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	d, _, ckBytes, err := cli.LoadDumpAttachments(*dumpPath)
	if err != nil {
		cli.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []res.Option{res.WithMaxDepth(*depth), res.WithSearchParallelism(*searchP)}
	var nav *checkpoint.Nav
	if len(ckBytes) > 0 && !*ignoreCk {
		ring, derr := res.DecodeCheckpoints(ckBytes)
		if derr != nil {
			cli.Fatal(derr)
		}
		if !ring.Empty() {
			opts = append(opts, res.WithCheckpoints(ring))
			if nav, err = checkpoint.NewNav(p, ring, d); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint navigation unavailable: %v\n", err)
			} else {
				fmt.Printf("checkpoints: %d (interval %d); goto <step> available\n",
					len(ring.Checkpoints), ring.Interval)
			}
		}
	}

	fmt.Printf("failure: %s\nsynthesizing execution suffix...\n", d.Fault)
	r, err := res.NewAnalyzer(p, opts...).Analyze(ctx, d)
	if err != nil && r == nil {
		cli.Fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "synthesis cut short: %v\n", err)
	}
	if r.Synthesized == nil {
		if r.HardwareSuspect {
			fmt.Println("no feasible suffix: likely hardware error; nothing to debug")
		} else {
			fmt.Println("no suffix synthesized within budget")
		}
		os.Exit(1)
	}
	fmt.Printf("suffix: %d blocks; root cause: %s\n", r.Suffix.Len(), r.Cause)
	if r.CheckpointAnchor != nil {
		fmt.Printf("anchored at checkpoint step %d (suffix depth %d)\n",
			r.CheckpointAnchor.Step, r.CheckpointAnchor.Depth)
	}

	dbg, err := replay.NewDebugger(p, r.Synthesized, d)
	if err != nil {
		cli.Fatal(err)
	}
	repl(p, dbg, nav, os.Stdin, os.Stdout)
}

func repl(p *res.Program, dbg *replay.Debugger, nav *checkpoint.Nav, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "(resdbg) ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "(resdbg) ")
			continue
		}
		arg := func(i int) (int64, bool) {
			if i >= len(fields) {
				return 0, false
			}
			v, err := strconv.ParseInt(fields[i], 0, 64)
			return v, err == nil
		}
		switch fields[0] {
		case "q", "quit", "exit":
			return
		case "s", "step":
			fmt.Fprintln(out, dbg.Step())
		case "rs", "rstep":
			s, err := dbg.ReverseStep()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintf(out, "%v (pos %d/%d)\n", s, dbg.Pos(), dbg.Len())
			}
		case "c", "continue":
			fmt.Fprintln(out, dbg.Continue())
		case "fault":
			fmt.Fprintln(out, dbg.RunToFault())
		case "break", "b":
			if pc, ok := arg(1); ok {
				dbg.Break(int(pc))
				fmt.Fprintf(out, "breakpoint at pc %d\n", pc)
			} else {
				fmt.Fprintln(out, "usage: break <pc>")
			}
		case "watch", "w":
			if a, ok := arg(1); ok {
				dbg.Watch(uint32(a))
				fmt.Fprintf(out, "watchpoint at mem[%d]\n", a)
			} else {
				fmt.Fprintln(out, "usage: watch <addr>")
			}
		case "regs":
			tid := int64(0)
			if v, ok := arg(1); ok {
				tid = v
			}
			regs, err := dbg.Regs(int(tid))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			for i, v := range regs {
				if v != 0 {
					fmt.Fprintf(out, "  r%-2d = %d\n", i, v)
				}
			}
		case "mem":
			a, ok := arg(1)
			if !ok {
				fmt.Fprintln(out, "usage: mem <addr> [count]")
				break
			}
			n := int64(1)
			if v, ok := arg(2); ok {
				n = v
			}
			for i := int64(0); i < n; i++ {
				v, err := dbg.ReadMem(uint32(a + i))
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					break
				}
				fmt.Fprintf(out, "  mem[%d] = %d\n", a+i, v)
			}
		case "where":
			tid, pc, fn := dbg.Where()
			fmt.Fprintf(out, "next: t%d at pc %d (%s), pos %d/%d\n", tid, pc, fn, dbg.Pos(), dbg.Len())
			if pc >= 0 && pc < len(p.Code) {
				fmt.Fprintf(out, "  %s\n", p.Code[pc].String())
			}
		case "goto", "g":
			if nav == nil {
				fmt.Fprintln(out, "error: no checkpoint ring attached to the dump (record one with resrun -record-checkpoints)")
				break
			}
			st, ok := arg(1)
			if !ok || st < 0 {
				fmt.Fprintln(out, "usage: goto <step>")
				break
			}
			v, ck, fault, err := nav.Goto(uint64(st))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "at step %d (restored checkpoint at step %d, replayed %d blocks)\n",
				st, ck.Step, uint64(st)-ck.Step)
			for _, t := range v.Threads {
				if t.State == coredump.ThreadExited {
					fmt.Fprintf(out, "  t%d exited\n", t.ID)
					continue
				}
				fmt.Fprintf(out, "  t%d at pc %d", t.ID, t.PC)
				if t.PC >= 0 && t.PC < len(p.Code) {
					fmt.Fprintf(out, "  %s", p.Code[t.PC].String())
				}
				fmt.Fprintln(out)
			}
			if fault != nil {
				fmt.Fprintf(out, "  fault: %s\n", fault)
			}
		case "restart":
			if err := dbg.Restart(); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "rewound to suffix start")
			}
		case "help", "h":
			fmt.Fprintln(out, "commands: step rstep continue fault break <pc> watch <addr> regs [tid] mem <addr> [n] where goto <step> restart quit")
		default:
			fmt.Fprintf(out, "unknown command %q (try help)\n", fields[0])
		}
		fmt.Fprint(out, "(resdbg) ")
	}
}

// Command resdbg is the interactive debugger over a synthesized suffix:
// the paper's §3.3 experience of stepping (forward AND backward) through
// the reconstructed last milliseconds of a failed production execution,
// with no recording of the original run.
//
// Usage:
//
//	resdbg -prog crash.s -dump core.dump
//
// Commands: step (s), rstep (rs), continue (c), break <pc>, watch <addr>,
// regs [tid], mem <addr> [n], where, restart, fault, quit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"res"
	"res/internal/cli"
	"res/internal/replay"
)

func main() {
	var (
		progPath = flag.String("prog", "", "assembly source file (required)")
		dumpPath = flag.String("dump", "", "coredump file (required)")
		depth    = flag.Int("depth", 0, "maximum suffix length (0 = default)")
		timeout  = flag.Duration("timeout", 0, "synthesis deadline (0 = none)")
		searchP  = flag.Int("search-parallel", 0, "candidate-level search parallelism (0 = all cores, 1 = sequential)")
	)
	flag.Parse()
	if *progPath == "" || *dumpPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	d, err := cli.LoadDump(*dumpPath)
	if err != nil {
		cli.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Printf("failure: %s\nsynthesizing execution suffix...\n", d.Fault)
	r, err := res.NewAnalyzer(p, res.WithMaxDepth(*depth), res.WithSearchParallelism(*searchP)).Analyze(ctx, d)
	if err != nil && r == nil {
		cli.Fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "synthesis cut short: %v\n", err)
	}
	if r.Synthesized == nil {
		if r.HardwareSuspect {
			fmt.Println("no feasible suffix: likely hardware error; nothing to debug")
		} else {
			fmt.Println("no suffix synthesized within budget")
		}
		os.Exit(1)
	}
	fmt.Printf("suffix: %d blocks; root cause: %s\n", r.Suffix.Len(), r.Cause)

	dbg, err := replay.NewDebugger(p, r.Synthesized, d)
	if err != nil {
		cli.Fatal(err)
	}
	repl(p, dbg)
}

func repl(p *res.Program, dbg *replay.Debugger) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("(resdbg) ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("(resdbg) ")
			continue
		}
		arg := func(i int) (int64, bool) {
			if i >= len(fields) {
				return 0, false
			}
			v, err := strconv.ParseInt(fields[i], 0, 64)
			return v, err == nil
		}
		switch fields[0] {
		case "q", "quit", "exit":
			return
		case "s", "step":
			fmt.Println(dbg.Step())
		case "rs", "rstep":
			s, err := dbg.ReverseStep()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%v (pos %d/%d)\n", s, dbg.Pos(), dbg.Len())
			}
		case "c", "continue":
			fmt.Println(dbg.Continue())
		case "fault":
			fmt.Println(dbg.RunToFault())
		case "break", "b":
			if pc, ok := arg(1); ok {
				dbg.Break(int(pc))
				fmt.Printf("breakpoint at pc %d\n", pc)
			} else {
				fmt.Println("usage: break <pc>")
			}
		case "watch", "w":
			if a, ok := arg(1); ok {
				dbg.Watch(uint32(a))
				fmt.Printf("watchpoint at mem[%d]\n", a)
			} else {
				fmt.Println("usage: watch <addr>")
			}
		case "regs":
			tid := int64(0)
			if v, ok := arg(1); ok {
				tid = v
			}
			regs, err := dbg.Regs(int(tid))
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for i, v := range regs {
				if v != 0 {
					fmt.Printf("  r%-2d = %d\n", i, v)
				}
			}
		case "mem":
			a, ok := arg(1)
			if !ok {
				fmt.Println("usage: mem <addr> [count]")
				break
			}
			n := int64(1)
			if v, ok := arg(2); ok {
				n = v
			}
			for i := int64(0); i < n; i++ {
				v, err := dbg.ReadMem(uint32(a + i))
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				fmt.Printf("  mem[%d] = %d\n", a+i, v)
			}
		case "where":
			tid, pc, fn := dbg.Where()
			fmt.Printf("next: t%d at pc %d (%s), pos %d/%d\n", tid, pc, fn, dbg.Pos(), dbg.Len())
			if pc >= 0 && pc < len(p.Code) {
				fmt.Printf("  %s\n", p.Code[pc].String())
			}
		case "restart":
			if err := dbg.Restart(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("rewound to suffix start")
			}
		case "help", "h":
			fmt.Println("commands: step rstep continue fault break <pc> watch <addr> regs [tid] mem <addr> [n] where restart quit")
		default:
			fmt.Printf("unknown command %q (try help)\n", fields[0])
		}
		fmt.Print("(resdbg) ")
	}
}

package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"res"
	"res/internal/checkpoint"
	"res/internal/replay"
	"res/internal/workload"
)

// gotoFixture synthesizes a suffix for a checkpointed failure and wires
// up the debugger plus checkpoint navigator the REPL drives.
type gotoFixture struct {
	p     *res.Program
	dbg   *replay.Debugger
	nav   *checkpoint.Nav
	ring  *checkpoint.Ring
	steps uint64
}

func newGotoFixture(t *testing.T) *gotoFixture {
	t.Helper()
	bug := workload.LongPrefix(300)
	d, ring, _, err := bug.FindFailureCheckpointed(16, checkpoint.Config{Every: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Empty() {
		t.Fatal("no checkpoints recorded")
	}
	p := bug.Program()
	r, err := res.NewAnalyzer(p, res.WithMaxDepth(12), res.WithCheckpoints(ring)).Analyze(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Synthesized == nil {
		t.Fatal("no suffix synthesized")
	}
	dbg, err := replay.NewDebugger(p, r.Synthesized, d)
	if err != nil {
		t.Fatal(err)
	}
	nav, err := checkpoint.NewNav(p, ring, d)
	if err != nil {
		t.Fatal(err)
	}
	return &gotoFixture{p: p, dbg: dbg, nav: nav, ring: ring, steps: d.Steps}
}

// run feeds a command script to the REPL and returns its output.
func (f *gotoFixture) run(nav *checkpoint.Nav, script string) string {
	var out bytes.Buffer
	repl(f.p, f.dbg, nav, strings.NewReader(script), &out)
	return out.String()
}

func TestREPLGoto(t *testing.T) {
	f := newGotoFixture(t)

	t.Run("exact checkpoint step", func(t *testing.T) {
		ck := f.ring.Checkpoints[len(f.ring.Checkpoints)-1]
		out := f.run(f.nav, fmt.Sprintf("goto %d\nquit\n", ck.Step))
		want := fmt.Sprintf("at step %d (restored checkpoint at step %d, replayed 0 blocks)", ck.Step, ck.Step)
		if !strings.Contains(out, want) {
			t.Errorf("goto %d output missing %q:\n%s", ck.Step, want, out)
		}
		if strings.Contains(out, "error:") {
			t.Errorf("goto %d errored:\n%s", ck.Step, out)
		}
	})

	t.Run("between checkpoints", func(t *testing.T) {
		ck := f.ring.Checkpoints[len(f.ring.Checkpoints)-1]
		target := ck.Step + 1
		if target > f.steps {
			t.Skipf("execution too short: checkpoint at %d, %d steps", ck.Step, f.steps)
		}
		out := f.run(f.nav, fmt.Sprintf("goto %d\nquit\n", target))
		want := fmt.Sprintf("at step %d (restored checkpoint at step %d, replayed 1 blocks)", target, ck.Step)
		if !strings.Contains(out, want) {
			t.Errorf("goto %d output missing %q:\n%s", target, want, out)
		}
	})

	t.Run("failure state", func(t *testing.T) {
		out := f.run(f.nav, fmt.Sprintf("goto %d\nquit\n", f.steps))
		if !strings.Contains(out, fmt.Sprintf("at step %d ", f.steps)) {
			t.Errorf("goto %d did not land:\n%s", f.steps, out)
		}
		if !strings.Contains(out, "fault:") {
			t.Errorf("goto %d (the failure step) reported no fault:\n%s", f.steps, out)
		}
	})

	t.Run("past the end", func(t *testing.T) {
		out := f.run(f.nav, fmt.Sprintf("goto %d\nquit\n", f.steps+10))
		if !strings.Contains(out, "error:") || !strings.Contains(out, "beyond the end") {
			t.Errorf("goto past the end did not error:\n%s", out)
		}
	})

	t.Run("no ring attached", func(t *testing.T) {
		out := f.run(nil, "goto 0\nquit\n")
		if !strings.Contains(out, "no checkpoint ring attached") {
			t.Errorf("goto without a ring did not explain itself:\n%s", out)
		}
	})

	t.Run("usage", func(t *testing.T) {
		out := f.run(f.nav, "goto\nquit\n")
		if !strings.Contains(out, "usage: goto <step>") {
			t.Errorf("bare goto did not print usage:\n%s", out)
		}
	})
}

// Command reshw answers the §3.2 question for a coredump: software bug or
// hardware error? It can also inject simulated hardware faults into a dump
// for testing the classifier.
//
// Usage:
//
//	reshw -prog crash.s -dump core.dump                 classify
//	reshw -prog crash.s -dump core.dump -flip 16:3 -o corrupted.dump
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"res/internal/cli"
	"res/internal/core"
	"res/internal/hwerr"
)

func main() {
	var (
		progPath  = flag.String("prog", "", "assembly source file (required)")
		dumpPath  = flag.String("dump", "", "coredump file (required)")
		depth     = flag.Int("depth", 0, "suffix search depth (0 = default)")
		flip      = flag.String("flip", "", "inject a memory bit flip, addr:bit")
		flipReg   = flag.String("flip-reg", "", "inject a register bit flip, tid:reg:bit")
		out       = flag.String("o", "", "output path for the corrupted dump (with -flip/-flip-reg)")
		version   = flag.Bool("version", false, "print version and exit")
		logFormat = flag.String("log-format", "text", cli.LogFormatUsage)
	)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("reshw"))
		return
	}
	if err := cli.SetupLogging(*logFormat, "", nil); err != nil {
		cli.Fatal(err)
	}
	if *progPath == "" || *dumpPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := cli.LoadProgram(*progPath)
	if err != nil {
		cli.Fatal(err)
	}
	d, err := cli.LoadDump(*dumpPath)
	if err != nil {
		cli.Fatal(err)
	}

	if *flip != "" || *flipReg != "" {
		if *out == "" {
			cli.Fatal(fmt.Errorf("injection requires -o"))
		}
		switch {
		case *flip != "":
			parts := strings.Split(*flip, ":")
			if len(parts) != 2 {
				cli.Fatal(fmt.Errorf("-flip wants addr:bit"))
			}
			addr, err1 := strconv.ParseUint(parts[0], 0, 32)
			bit, err2 := strconv.ParseUint(parts[1], 0, 6)
			if err1 != nil || err2 != nil {
				cli.Fatal(fmt.Errorf("-flip wants addr:bit"))
			}
			nd, inj := hwerr.FlipMemoryBit(d, uint32(addr), uint(bit))
			fmt.Println("injected:", inj)
			d = nd
		case *flipReg != "":
			parts := strings.Split(*flipReg, ":")
			if len(parts) != 3 {
				cli.Fatal(fmt.Errorf("-flip-reg wants tid:reg:bit"))
			}
			tid, _ := strconv.Atoi(parts[0])
			reg, _ := strconv.Atoi(parts[1])
			bit, _ := strconv.ParseUint(parts[2], 0, 6)
			nd, inj, err := hwerr.FlipRegisterBit(d, tid, reg, uint(bit))
			if err != nil {
				cli.Fatal(err)
			}
			fmt.Println("injected:", inj)
			d = nd
		}
		if err := cli.SaveDump(*out, d); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("corrupted dump written to %s\n", *out)
		return
	}

	v, err := hwerr.Classify(p, d, core.Options{MaxDepth: *depth})
	if err != nil {
		cli.Fatal(err)
	}
	switch {
	case v.HardwareSuspect:
		fmt.Println("verdict: LIKELY HARDWARE ERROR — no feasible execution suffix reaches this coredump")
	case v.Inconclusive:
		fmt.Println("verdict: inconclusive (analysis hit unknowns)")
	default:
		fmt.Println("verdict: consistent with a software execution")
	}
	fmt.Printf("stats: attempts=%d feasible=%d infeasible=%d unknown=%d\n",
		v.Stats.Attempts, v.Stats.Feasible, v.Stats.Infeasible, v.Stats.Unknown)
}

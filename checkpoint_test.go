package res_test

import (
	"bytes"
	"context"
	"testing"

	"res"
	"res/internal/checkpoint"
	"res/internal/workload"
)

// checkpointed produces a failing dump and its recorded ring for a bug.
func checkpointed(t *testing.T, bug *workload.Bug, every uint64) (*res.Dump, *res.CheckpointRing) {
	t.Helper()
	d, ring, _, err := bug.FindFailureCheckpointed(60, checkpoint.Config{Every: every})
	if err != nil {
		t.Fatalf("no failing dump: %v", err)
	}
	if ring.Empty() {
		t.Fatal("no checkpoints recorded")
	}
	return d, ring
}

// TestCheckpointAnchoredEquivalence is the correctness contract of
// checkpoint anchoring: across workload bugs — including the race whose
// cause manifests far from the failure — the anchored analysis buckets
// to the same root-cause key as the full-suffix search.
func TestCheckpointAnchoredEquivalence(t *testing.T) {
	cases := []struct {
		bug   *workload.Bug
		every uint64
	}{
		{workload.RaceCounter(), 16},
		{workload.AtomViolation(), 16},
		{workload.LongPrefix(400), 16},
		{workload.DistanceChain(120), 16},
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bug.Name, func(t *testing.T) {
			t.Parallel()
			p := tc.bug.Program()
			d, ring := checkpointed(t, tc.bug, tc.every)
			base := []res.Option{res.WithMaxDepth(12), res.WithMaxNodes(4000)}

			full := res.NewAnalyzer(p, base...)
			rf, err := full.Analyze(ctx, d)
			if err != nil {
				t.Fatalf("full search: %v", err)
			}
			if rf.Cause == nil {
				t.Fatal("full search found no cause")
			}

			anchored := res.NewAnalyzer(p, append(base, res.WithCheckpoints(ring))...)
			ra, err := anchored.Analyze(ctx, d)
			if err != nil {
				t.Fatalf("anchored search: %v", err)
			}
			if ra.Cause == nil {
				t.Fatal("anchored search found no cause")
			}
			if got, want := ra.Cause.Key(), rf.Cause.Key(); got != want {
				t.Errorf("anchoring changed the root cause: %q vs %q", got, want)
			}
		})
	}
}

// TestCheckpointAnchoredParallelDeterminism extends the byte-identity
// contract to anchored searches: the report produced with candidate
// parallelism is identical to the sequential engine's, checkpoint_anchor
// field included.
func TestCheckpointAnchoredParallelDeterminism(t *testing.T) {
	bugs := []struct {
		bug   *workload.Bug
		every uint64
	}{
		{workload.RaceCounter(), 16},
		{workload.LongPrefix(400), 16},
	}
	ctx := context.Background()
	for _, tc := range bugs {
		tc := tc
		t.Run(tc.bug.Name, func(t *testing.T) {
			t.Parallel()
			p := tc.bug.Program()
			d, ring := checkpointed(t, tc.bug, tc.every)
			base := []res.Option{res.WithMaxDepth(12), res.WithMaxNodes(4000), res.WithCheckpoints(ring)}
			seq := res.NewAnalyzer(p, append(base, res.WithSearchParallelism(1))...)
			par := res.NewAnalyzer(p, append(base, res.WithSearchParallelism(4))...)
			rs, err := seq.Analyze(ctx, d)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			rp, err := par.Analyze(ctx, d)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			js, jp := normalizedJSON(t, rs), normalizedJSON(t, rp)
			if !bytes.Equal(js, jp) {
				t.Errorf("parallel anchored report differs from sequential:\n--- sequential\n%s\n--- parallel\n%s", js, jp)
			}
		})
	}
}

// TestCheckpointLongExecutionAcceptance is the PR's acceptance bar: a
// workload whose failure manifests more than 50000 steps into the run.
// Without checkpoints the suffix search is bounded only by the execution
// length; with the recorded ring the anchored analysis must reach the
// identical root-cause key while the suffix depth stays within the
// ring's (thinned) checkpoint interval — time-bounded, not
// length-bounded.
func TestCheckpointLongExecutionAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("long execution")
	}
	bug := workload.DistanceChain(50000)
	p := bug.Program()
	d, ring, _, err := bug.FindFailureCheckpointed(4, checkpoint.Config{Every: 64, Cap: 256})
	if err != nil {
		t.Fatalf("no failing dump: %v", err)
	}
	if d.Steps < 50000 {
		t.Fatalf("failure after only %d steps, want >= 50000", d.Steps)
	}
	ctx := context.Background()
	base := []res.Option{res.WithMaxNodes(200000)}

	full := res.NewAnalyzer(p, base...)
	rf, err := full.Analyze(ctx, d)
	if err != nil {
		t.Fatalf("uncheckpointed: %v", err)
	}
	if rf.Cause == nil {
		t.Fatal("uncheckpointed search found no cause")
	}

	anchored := res.NewAnalyzer(p, append(base, res.WithCheckpoints(ring))...)
	ra, err := anchored.Analyze(ctx, d)
	if err != nil {
		t.Fatalf("anchored: %v", err)
	}
	if ra.Cause == nil {
		t.Fatal("anchored search found no cause")
	}
	if got, want := ra.Cause.Key(), rf.Cause.Key(); got != want {
		t.Errorf("anchoring changed the root cause: %q vs %q", got, want)
	}
	if ra.CheckpointAnchor == nil {
		t.Fatal("anchored analysis reported no checkpoint anchor")
	}
	if !ra.CheckpointAnchor.Verified {
		t.Error("anchor was not verified by forward replay")
	}
	if uint64(ra.CheckpointAnchor.Depth) > ring.Interval {
		t.Errorf("anchored suffix depth %d exceeds the checkpoint interval %d",
			ra.CheckpointAnchor.Depth, ring.Interval)
	}
	if uint64(ra.Report.Stats.MaxDepth) > ring.Interval {
		t.Errorf("search explored depth %d past the checkpoint interval %d",
			ra.Report.Stats.MaxDepth, ring.Interval)
	}
	t.Logf("execution %d steps, anchor at step %d (depth %d), interval %d",
		d.Steps, ra.CheckpointAnchor.Step, ra.CheckpointAnchor.Depth, ring.Interval)
}

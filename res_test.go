package res_test

import (
	"testing"
	"time"

	"res"
	"res/internal/rootcause"
	"res/internal/workload"
)

// TestSection4ConcurrencyBugs reproduces the paper's evaluation (§4):
// three synthetic concurrency bugs whose root causes are data races or
// atomicity violations. RES must identify the correct root cause in well
// under a minute, with no false positives (it never reports a suffix that
// does not reproduce the failure, and never blames a location not
// involved in the bug).
func TestSection4ConcurrencyBugs(t *testing.T) {
	for _, bug := range workload.ConcurrencyBugs() {
		bug := bug
		t.Run(bug.Name, func(t *testing.T) {
			p := bug.Program()
			d, _, err := bug.FindFailure(50)
			if err != nil {
				t.Fatalf("failure never manifested: %v", err)
			}
			start := time.Now()
			r, err := res.Analyze(p, d, res.Options{MaxDepth: 16, MaxNodes: 4000})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			elapsed := time.Since(start)
			if r.Cause == nil {
				t.Fatalf("no root cause; report %+v", r.Report.Stats)
			}
			// The paper classifies these root causes as "data races or
			// atomicity violations"; either is correct, but the blamed
			// address must be the actually racy location — blaming
			// anything else would be the false positive the paper rules
			// out.
			if r.Cause.Kind != rootcause.DataRace && r.Cause.Kind != rootcause.AtomicityViolation {
				t.Errorf("cause = %v, want a race-family cause (full: %s)", r.Cause.Kind, r.Cause)
			}
			racy, err := p.GlobalAddr(bug.RacyGlobal)
			if err != nil {
				t.Fatalf("racy global: %v", err)
			}
			if r.Cause.Addr != racy {
				t.Errorf("blamed address %d, want %s at %d (full: %s)", r.Cause.Addr, bug.RacyGlobal, racy, r.Cause)
			}
			// No false positives: the supporting suffix must replay to the
			// exact coredump.
			if r.Replay == nil || !r.Replay.Matches {
				t.Errorf("supporting suffix does not reproduce the dump")
			}
			// "In all the cases RES was able to identify the correct root
			// cause in less than 1 minute."
			if elapsed > time.Minute {
				t.Errorf("analysis took %v, paper bound is 1 minute", elapsed)
			}
			if r.HardwareSuspect {
				t.Error("software bug misclassified as hardware error")
			}
		})
	}
}

// TestFigure1Overflow reproduces Figure 1: a buffer overflow whose crash
// happens later, through a corrupted pointer. RES must (a) discard the
// non-overflowing predecessor (x==2 path), and (b) pinpoint the overflow
// store as the root cause via checked replay.
func TestFigure1Overflow(t *testing.T) {
	bug := workload.Fig1()
	p := bug.Program()
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatalf("Figure 1 crash did not manifest: %v", err)
	}
	// The dump must show the paper's state: x == 1, y == 10.
	x, _ := p.GlobalAddr("x")
	y, _ := p.GlobalAddr("y")
	if d.Mem.Load(x) != 1 || d.Mem.Load(y) != 10 {
		t.Fatalf("dump state x=%d y=%d, want 1, 10", d.Mem.Load(x), d.Mem.Load(y))
	}
	r, err := res.Analyze(p, d, res.Options{MaxDepth: 12, MaxNodes: 4000})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r.Cause == nil {
		t.Fatalf("no root cause; stats %+v", r.Report.Stats)
	}
	if r.Cause.Kind != rootcause.BufferOverflow {
		t.Fatalf("cause = %s, want buffer-overflow", r.Cause)
	}
	// The blamed pc must be the overflowing store inside pred1.
	pred1Store := -1
	for pc := range p.Code {
		if p.Code[pc].String() == "store r7, r8, 0" {
			pred1Store = pc
			break
		}
	}
	if pred1Store < 0 {
		t.Fatal("cannot locate the overflow store in the program")
	}
	if len(r.Cause.PCs) != 1 || r.Cause.PCs[0] != pred1Store {
		t.Errorf("blamed pcs %v, want [%d]", r.Cause.PCs, pred1Store)
	}
	// The suffix must traverse pred1, never pred2.
	sawPred2 := false
	for _, s := range r.Synthesized.Node.Steps() {
		blk := p.Block(s.Block)
		for pc := blk.Start; pc < blk.End; pc++ {
			if p.Code[pc].String() == "const r9, 2" {
				sawPred2 = true
			}
		}
	}
	if sawPred2 {
		t.Error("suffix traverses the infeasible pred2 path")
	}
}

// TestExploitabilityClassification checks the §3.1 taint verdicts: an
// attacker-controlled overflow is exploitable, a constant null crash is
// not.
func TestExploitabilityClassification(t *testing.T) {
	tainted := workload.TaintedOverflow()
	d, _, err := tainted.FindFailure(4)
	if err != nil {
		t.Fatalf("tainted overflow: %v", err)
	}
	r, err := res.Analyze(tainted.Program(), d, res.Options{MaxDepth: 8})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r.Exploitability == nil || !r.Exploitability.Exploitable {
		t.Errorf("tainted overflow not classified exploitable: %+v", r.Exploitability)
	}

	benign := workload.UntaintedCrash()
	d2, _, err := benign.FindFailure(4)
	if err != nil {
		t.Fatalf("untainted crash: %v", err)
	}
	r2, err := res.Analyze(benign.Program(), d2, res.Options{MaxDepth: 8})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r2.Exploitability != nil && r2.Exploitability.Exploitable {
		t.Errorf("constant crash misclassified exploitable: %+v", r2.Exploitability)
	}
}

// TestHashConstructReexecution checks the §6 workaround: when the hash
// input is still in memory, RES re-executes the non-invertible hash
// forward over the concrete value instead of inverting it.
func TestHashConstructReexecution(t *testing.T) {
	bug := workload.HashConstruct(true)
	p := bug.Program()
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatalf("hash bug: %v", err)
	}
	r, err := res.Analyze(p, d, res.Options{MaxDepth: 8})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r.Cause == nil {
		t.Fatalf("no cause; stats %+v", r.Report.Stats)
	}
	// The suffix must extend past the hash computation (the spilled input
	// makes the hash block's compatibility check concrete).
	if r.Report.Stats.MaxDepth < 2 {
		t.Errorf("search did not cross the hash construct; stats %+v", r.Report.Stats)
	}
	if r.Replay == nil || !r.Replay.Matches {
		t.Error("suffix does not reproduce the dump")
	}
}

// TestLongExecutionIndependence is the smoke-test version of E3: the cost
// of RES analysis must not grow with the benign prefix length.
func TestLongExecutionIndependence(t *testing.T) {
	attempts := make(map[int]int)
	for _, n := range []int{100, 10000} {
		bug := workload.LongPrefix(n)
		d, _, err := bug.FindFailure(2)
		if err != nil {
			t.Fatalf("long-prefix %d: %v", n, err)
		}
		if d.Steps < uint64(n/2) {
			t.Fatalf("prefix too short: %d blocks for n=%d", d.Steps, n)
		}
		r, err := res.Analyze(bug.Program(), d, res.Options{MaxDepth: 8, MaxNodes: 2000})
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		if r.Cause == nil {
			t.Fatalf("no cause for n=%d; stats %+v", n, r.Report.Stats)
		}
		attempts[n] = r.Report.Stats.Attempts
	}
	// The search effort must be identical regardless of execution length.
	if attempts[100] != attempts[10000] {
		t.Errorf("search effort varies with execution length: %v", attempts)
	}
}
